"""Serial-vs-concurrent throughput benchmark for the query service.

Runs the shipped workloads through :class:`repro.service.QueryService`
twice —

* **serial** — one worker, so the service machinery (admission,
  budgets, breaker bookkeeping) runs but nothing overlaps;
* **concurrent** — ``--workers`` threads sharing one lock-protected
  :class:`~repro.core.context.TranslationContext` per database;
* **processes** (``--processes N``, optional) — the same workload
  through the supervised multi-process pool
  (:class:`repro.server.Supervisor`), measuring what crash isolation
  costs when nothing crashes.  Timing starts *after* the workers are
  built and ready — process spawn is a deployment cost, frame
  round-trips are the serving cost this pass measures.

Every concurrent (and process-pool) response is checked byte-for-byte
against its serial counterpart — concurrency and process isolation
change throughput, never results.  A further pass re-runs the
concurrent pool with the translation result cache enabled
(docs/CACHING.md): the repeated workload must hit the cache
(``--min-cache-hit-rate``; CI pins 0.25) and cached responses must
still match the serial ones byte-for-byte.  ``--max-process-overhead F`` turns
the fault-free process-pool overhead into a gate: exit nonzero when
``(process - thread) / thread`` exceeds ``F`` (CI pins 0.10).  The
JSON report (per-workload timings plus the full service snapshot:
aggregate stats, breaker states, context memo counters) is written to
``SERVICE_stats.json``; CI uploads it as an artifact next to
``BENCH_translate.json``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py \
        --workers 8 --repeat 4 --output /tmp/service.json
    PYTHONPATH=src python benchmarks/bench_service.py \
        --processes 1 --max-process-overhead 0.10
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from typing import Callable

from repro import Database
from repro.core.config import DEFAULT_CONFIG
from repro.service import QueryService, ServiceConfig
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
    WorkloadQuery,
)
from repro.datasets import make_course_database, make_movie_database

#: workload name -> (database factory, query list)
WORKLOADS: dict[str, tuple[Callable[[], Database], list[WorkloadQuery]]] = {
    "textbook": (make_movie_database, TEXTBOOK_QUERIES),
    "sophisticated": (make_movie_database, SOPHISTICATED_QUERIES),
    "courses48": (make_course_database, COURSE_QUERIES),
}

#: cold passes per pool when gating; the minimum is the gated number
GATE_RUNS = 3

#: workload name -> the dataset its worker processes rebuild
DATASET_OF = {
    "textbook": "movies",
    "sophisticated": "movies",
    "courses48": "courses",
}


def queries_of(workload: list[WorkloadQuery], repeat: int) -> list[str]:
    return [q.sf_sql or q.gold_sql for q in workload] * repeat


def run_service(
    database: Database, queries: list[str], workers: int, cache: int = 0
) -> tuple[float, list, dict]:
    translator = DEFAULT_CONFIG
    if cache > 0:
        translator = dataclasses.replace(
            DEFAULT_CONFIG, result_cache_size=cache
        )
    config = ServiceConfig(
        workers=workers, queue_limit=len(queries), translator=translator
    )
    with QueryService(database, config) as service:
        started = time.perf_counter()
        responses = service.run(queries)
        elapsed = time.perf_counter() - started
        snapshot = service.snapshot()
    return elapsed, responses, snapshot


def cache_hit_rate(snapshot: dict) -> float:
    """Result-cache hit rate aggregated over the snapshot's databases."""
    hits = misses = 0
    for memo in snapshot.get("memo", {}).values():
        hits += memo.get("result_hits", 0)
        misses += memo.get("result_misses", 0)
    return hits / (hits + misses) if hits + misses else 0.0


def run_processes(
    name: str, queries: list[str], processes: int
) -> tuple[float, list]:
    """The workload through the supervised process pool, timed after
    the workers are built and ready."""
    from repro.server import DatabaseSpec, Supervisor, SupervisorConfig

    shard = DATASET_OF[name]
    supervisor = Supervisor(
        {shard: DatabaseSpec(kind="dataset", target=shard)},
        SupervisorConfig(
            workers_per_shard=processes, queue_limit=len(queries)
        ),
    )
    with supervisor:
        started = time.perf_counter()
        responses = supervisor.run(queries, database=shard)
        elapsed = time.perf_counter() - started
    return elapsed, responses


def check_identical(serial: list, other: list, label: str) -> None:
    """Neither concurrency nor process isolation may change a byte."""
    for a, b in zip(serial, other):
        if a.sql != b.sql or a.outcome != b.outcome:
            raise AssertionError(
                f"{label} response diverged from serial for "
                f"{a.query!r}:\n  serial: {a.outcome} {a.sql}\n"
                f"  {label}: {b.outcome} {b.sql}"
            )


def bench_workload(
    name: str, workers: int, repeat: int, processes: int = 0
) -> dict:
    factory, workload = WORKLOADS[name]
    queries = queries_of(workload, repeat)
    serial_seconds, serial_responses, _ = run_service(factory(), queries, 1)
    conc_seconds, conc_responses, snapshot = run_service(
        factory(), queries, workers
    )
    check_identical(serial_responses, conc_responses, "concurrent")
    speedup = serial_seconds / conc_seconds if conc_seconds > 0 else float("inf")
    # the same repeated workload with the translation result cache on:
    # every repeat past the first should hit (concurrent workers can
    # double-miss when the same query is in flight twice, so the rate
    # is gated below the serial ideal of (repeat-1)/repeat)
    cached_seconds, cached_responses, cached_snapshot = run_service(
        factory(), queries, workers, cache=len(queries) + 16
    )
    check_identical(serial_responses, cached_responses, "cached")
    hit_rate = cache_hit_rate(cached_snapshot)
    row = {
        "queries": len(queries),
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "concurrent_seconds": round(conc_seconds, 4),
        "speedup": round(speedup, 2),
        "cached_seconds": round(cached_seconds, 4),
        "cache_hit_rate": round(hit_rate, 4),
        "identical": True,
        "snapshot": snapshot,
    }
    print(
        f"{name:>14}: {len(queries):>3} queries  "
        f"serial {serial_seconds:7.3f}s  "
        f"x{workers} workers {conc_seconds:7.3f}s  "
        f"speedup {speedup:5.2f}x  "
        f"cached {cached_seconds:7.3f}s ({hit_rate:.0%} hits)"
    )
    if processes > 0:
        # compare the process pool against a thread pool of equal width
        # so scheduling is apples-to-apples and the delta is pure IPC;
        # best-of-N keeps scheduler noise out of the gated number
        thread_seconds = float("inf")
        proc_seconds = float("inf")
        proc_responses = None
        for _ in range(GATE_RUNS):
            thread_seconds = min(
                thread_seconds, run_service(factory(), queries, processes)[0]
            )
            seconds, responses = run_processes(name, queries, processes)
            if proc_responses is None:
                proc_responses = responses
            proc_seconds = min(proc_seconds, seconds)
        check_identical(serial_responses, proc_responses, "process-pool")
        overhead = (
            (proc_seconds - thread_seconds) / thread_seconds
            if thread_seconds > 0
            else 0.0
        )
        row.update(
            processes=processes,
            thread_pool_seconds=round(thread_seconds, 4),
            process_pool_seconds=round(proc_seconds, 4),
            process_overhead=round(overhead, 4),
            process_identical=True,
        )
        print(
            f"{'':>14}  x{processes} threads {thread_seconds:7.3f}s  "
            f"x{processes} processes {proc_seconds:7.3f}s  "
            f"overhead {overhead:+7.1%}"
        )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        default=["textbook", "sophisticated", "courses48"],
        help="workloads to benchmark (default: all)",
    )
    parser.add_argument(
        "--workers", type=int, default=8, help="concurrent worker threads"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="times each workload's query list is submitted",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=0,
        metavar="N",
        help="also run each workload through N supervised worker "
        "processes and report the fault-free overhead vs an N-thread "
        "pool (default: 0 = skip)",
    )
    parser.add_argument(
        "--max-process-overhead",
        type=float,
        default=None,
        metavar="F",
        help="fail (exit 1) if any workload's process-pool overhead "
        "exceeds this fraction (CI pins 0.10)",
    )
    parser.add_argument(
        "--min-cache-hit-rate",
        type=float,
        default=None,
        metavar="F",
        help="fail (exit 1) if the cached pass's result-cache hit rate "
        "falls below this fraction on any workload (with --repeat 2 "
        "the serial ideal is 0.5; CI pins 0.25 to absorb concurrent "
        "double-misses)",
    )
    parser.add_argument(
        "--output",
        default="SERVICE_stats.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = {
        name: bench_workload(
            name, args.workers, args.repeat, processes=args.processes
        )
        for name in args.workloads
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    if args.min_cache_hit_rate is not None:
        low = {
            name: row["cache_hit_rate"]
            for name, row in report.items()
            if row["cache_hit_rate"] < args.min_cache_hit_rate
        }
        if low:
            print(
                f"CACHE HIT-RATE GATE FAILED "
                f"(minimum {args.min_cache_hit_rate:.0%}): {low}"
            )
            return 1
        print(
            f"result-cache hit rate above {args.min_cache_hit_rate:.0%} "
            f"for all workloads"
        )
    if args.max_process_overhead is not None and args.processes > 0:
        over = {
            name: row["process_overhead"]
            for name, row in report.items()
            if row.get("process_overhead", 0.0) > args.max_process_overhead
        }
        if over:
            print(
                f"PROCESS-POOL OVERHEAD GATE FAILED "
                f"(limit {args.max_process_overhead:.0%}): {over}"
            )
            return 1
        print(
            f"process-pool overhead within {args.max_process_overhead:.0%} "
            f"for all workloads"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
