"""Serial-vs-concurrent throughput benchmark for the query service.

Runs the shipped workloads through :class:`repro.service.QueryService`
twice —

* **serial** — one worker, so the service machinery (admission,
  budgets, breaker bookkeeping) runs but nothing overlaps;
* **concurrent** — ``--workers`` threads sharing one lock-protected
  :class:`~repro.core.context.TranslationContext` per database.

Every concurrent response is checked byte-for-byte against its serial
counterpart — concurrency changes throughput, never results.  The
JSON report (per-workload timings plus the full service snapshot:
aggregate stats, breaker states, context memo counters) is written to
``SERVICE_stats.json``; CI uploads it as an artifact next to
``BENCH_translate.json``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py \
        --workers 8 --repeat 4 --output /tmp/service.json
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Callable

from repro import Database
from repro.service import QueryService, ServiceConfig
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
    WorkloadQuery,
)
from repro.datasets import make_course_database, make_movie_database

#: workload name -> (database factory, query list)
WORKLOADS: dict[str, tuple[Callable[[], Database], list[WorkloadQuery]]] = {
    "textbook": (make_movie_database, TEXTBOOK_QUERIES),
    "sophisticated": (make_movie_database, SOPHISTICATED_QUERIES),
    "courses48": (make_course_database, COURSE_QUERIES),
}


def queries_of(workload: list[WorkloadQuery], repeat: int) -> list[str]:
    return [q.sf_sql or q.gold_sql for q in workload] * repeat


def run_service(
    database: Database, queries: list[str], workers: int
) -> tuple[float, list, dict]:
    config = ServiceConfig(workers=workers, queue_limit=len(queries))
    with QueryService(database, config) as service:
        started = time.perf_counter()
        responses = service.run(queries)
        elapsed = time.perf_counter() - started
        snapshot = service.snapshot()
    return elapsed, responses, snapshot


def check_identical(serial: list, concurrent: list) -> None:
    """Shared-context concurrency must never change a single byte."""
    for a, b in zip(serial, concurrent):
        if a.sql != b.sql or a.outcome != b.outcome:
            raise AssertionError(
                f"concurrent response diverged from serial for "
                f"{a.query!r}:\n  serial: {a.outcome} {a.sql}\n"
                f"  concurrent: {b.outcome} {b.sql}"
            )


def bench_workload(name: str, workers: int, repeat: int) -> dict:
    factory, workload = WORKLOADS[name]
    queries = queries_of(workload, repeat)
    serial_seconds, serial_responses, _ = run_service(factory(), queries, 1)
    conc_seconds, conc_responses, snapshot = run_service(
        factory(), queries, workers
    )
    check_identical(serial_responses, conc_responses)
    speedup = serial_seconds / conc_seconds if conc_seconds > 0 else float("inf")
    row = {
        "queries": len(queries),
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "concurrent_seconds": round(conc_seconds, 4),
        "speedup": round(speedup, 2),
        "identical": True,
        "snapshot": snapshot,
    }
    print(
        f"{name:>14}: {len(queries):>3} queries  "
        f"serial {serial_seconds:7.3f}s  "
        f"x{workers} workers {conc_seconds:7.3f}s  "
        f"speedup {speedup:5.2f}x"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        default=["textbook", "sophisticated", "courses48"],
        help="workloads to benchmark (default: all)",
    )
    parser.add_argument(
        "--workers", type=int, default=8, help="concurrent worker threads"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="times each workload's query list is submitted",
    )
    parser.add_argument(
        "--output",
        default="SERVICE_stats.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = {
        name: bench_workload(name, args.workers, args.repeat)
        for name in args.workloads
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
