"""Figure 17: top-k MTJN generation time vs number of relations involved.

Regenerates the paper's log-scale line chart as a table with one row per
join size (2-10) and one column per algorithm: the DISCOVER-style Regular
baseline, the Rightmost baseline [12], and the paper's pruned algorithm
at k = 1, 5 and 10.  Asserts the figure's ordering: Regular slows down
dramatically with size, Rightmost is much better but still unpruned, and
the paper's algorithm runs substantially faster, with a noticeable but
modest extra cost for larger k.
"""

import statistics

from repro.experiments import run_efficiency
from repro.workloads.efficiency import EFFICIENCY_QUERIES


def test_fig17_efficiency(benchmark, course_db):
    report = benchmark.pedantic(
        run_efficiency,
        args=(course_db, EFFICIENCY_QUERIES),
        kwargs={"repeat": 1},
        rounds=1,
        iterations=1,
    )

    series = {
        "regular": report.series("regular", 1),
        "rightmost": report.series("rightmost", 1),
        "top1": report.series("ours", 1),
        "top5": report.series("ours", 5),
        "top10": report.series("ours", 10),
    }
    print("\nFigure 17 — seconds per query (log-scale in the paper)")
    print(
        f"{'size':>5} {'Regular':>10} {'Rightmost':>10} "
        f"{'Top 1':>10} {'Top 5':>10} {'Top 10':>10}"
    )
    for size in sorted(series["top1"]):
        print(
            f"{size:>5} {series['regular'][size]:>10.4f} "
            f"{series['rightmost'][size]:>10.4f} "
            f"{series['top1'][size]:>10.4f} {series['top5'][size]:>10.4f} "
            f"{series['top10'][size]:>10.4f}"
        )
    benchmark.extra_info["series"] = {
        name: values for name, values in series.items()
    }

    large = [s for s in series["top1"] if s >= 6]
    geo = lambda vals: statistics.geometric_mean(vals)  # noqa: E731
    regular_large = geo([series["regular"][s] for s in large])
    rightmost_large = geo([series["rightmost"][s] for s in large])
    ours_large = geo([series["top1"][s] for s in large])
    # the paper's log-scale separation: Regular slowest by orders of
    # magnitude, ours substantially faster than Rightmost
    assert regular_large > rightmost_large > ours_large
    assert regular_large / ours_large > 50
    assert rightmost_large / ours_large > 3
    # "a noticeable, but modest, cost to generating multiple MTJN"
    total1 = sum(series["top1"].values())
    total10 = sum(series["top10"].values())
    assert total1 < total10 < 100 * total1
