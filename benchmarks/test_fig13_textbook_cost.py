"""Figure 13 + §7.2 accuracy: the 17 textbook queries.

Regenerates the paper's bar chart as a per-query table of information
units (SF-SQL vs GUI builder vs full SQL) and asserts the §7.2 claims:
all 17 queries translate correctly in the top-1 translation with no view
graph, and SF-SQL costs a small fraction of full SQL (paper: 35% of SQL,
55% of GUI-adjusted SQL).
"""

from repro.experiments import run_cost_experiment
from repro.workloads import TEXTBOOK_QUERIES


def test_fig13_textbook_cost(benchmark, movie_db):
    report = benchmark.pedantic(
        run_cost_experiment,
        args=(movie_db, TEXTBOOK_QUERIES),
        rounds=1,
        iterations=1,
    )

    print("\nFigure 13 — information units per textbook query")
    print(f"{'query':>6} {'SF-SQL':>7} {'GUI':>5} {'SQL':>5} {'top-1':>6}")
    for row in report.rows:
        print(
            f"{row.qid:>6} {row.sf:>7.0f} {row.gui:>5} {row.sql:>5} "
            f"{'OK' if row.correct_top1 else 'FAIL':>6}"
        )
    sf_ratio = report.ratio_sf_to_sql()
    gui_ratio = report.ratio_gui_to_sql()
    print(
        f"SF-SQL/SQL = {sf_ratio:.2f} (paper ~0.35), "
        f"GUI/SQL = {gui_ratio:.2f} (paper ~0.55 of SQL)"
    )
    benchmark.extra_info["sf_to_sql"] = sf_ratio
    benchmark.extra_info["gui_to_sql"] = gui_ratio

    # §7.2: "all 17 queries can be correctly translated ... in the top 1"
    assert report.all_correct
    # Figure 13's shape: SF-SQL cheapest, GUI in between, SQL dearest
    assert sf_ratio < gui_ratio < 1.0
    assert sf_ratio < 0.7
