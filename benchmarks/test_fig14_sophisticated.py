"""Figure 14: the six sophisticated movie queries with five users each.

Regenerates the paper's table — per-query average SF-SQL cost over the
five simulated users, the GUI-builder cost and the full-SQL cost — and
asserts the §7.2 claim that every user's query translates correctly in
the top-1 translation (no view graph involved).
"""

from repro.experiments import run_fig14
from repro.workloads import SOPHISTICATED_QUERIES


def test_fig14_sophisticated(benchmark, movie_db):
    rows = benchmark.pedantic(
        run_fig14,
        args=(movie_db, SOPHISTICATED_QUERIES),
        rounds=1,
        iterations=1,
    )

    print("\nFigure 14 — sophisticated queries (paper values in parens)")
    paper = {
        "S1": (6.6, 12, 22), "S2": (3.4, 8, 15), "S3": (4.6, 11, 21),
        "S4": (3.4, 8, 15), "S5": (3.8, 10, 20), "S6": (5.0, 11, 21),
    }
    print(f"{'query':>6} {'SF avg':>7} {'GUI':>5} {'SQL':>5} {'users ok':>9}")
    for row in rows:
        p = paper[row.qid]
        print(
            f"{row.qid:>6} {row.sf_average:>7.1f} ({p[0]:.1f}) "
            f"{row.gui:>3} ({p[1]}) {row.sql:>3} ({p[2]}) "
            f"{row.users_correct}/{row.users_total}"
        )
    benchmark.extra_info["rows"] = [
        (r.qid, r.sf_average, r.gui, r.sql, r.users_correct) for r in rows
    ]

    # the paper's headline: every user's SF-SQL translates correctly top-1
    assert all(r.users_correct == r.users_total for r in rows)
    # cost ordering holds per query
    assert all(r.sf_average < r.gui < r.sql for r in rows)
    # overall SF-SQL burden ~a quarter of full SQL (paper: 24%)
    sf = sum(r.sf_average for r in rows)
    sql = sum(r.sql for r in rows)
    assert sf / sql < 0.4
