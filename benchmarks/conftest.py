"""Session-scoped databases shared by the per-figure benchmarks."""

import pytest

from repro.datasets import (
    make_course_alt_database,
    make_course_database,
    make_course_world,
    make_movie_database,
)


@pytest.fixture(scope="session")
def movie_db():
    return make_movie_database()


@pytest.fixture(scope="session")
def course_world():
    return make_course_world()


@pytest.fixture(scope="session")
def course_db(course_world):
    return make_course_database(world=course_world)


@pytest.fixture(scope="session")
def course_alt_db(course_world):
    return make_course_alt_database(world=course_world)
