"""Cold-vs-warm translation benchmark for the shared TranslationContext.

Measures the translation hot path on the shipped workloads twice:

* **cold** — one fresh :class:`~repro.core.translator.SchemaFreeTranslator`
  per query with the process-global string-similarity caches cleared
  first, simulating a fresh process per query (the pre-context behavior);
* **warm** — a single translator whose :class:`TranslationContext` was
  warmed by one full prior pass over the workload, batch-translated via
  ``translate_many``.

Every warm translation is checked byte-for-byte against its cold
counterpart — the context memoizes, it must never change outcomes.
Results (per-workload timings, speedups, and the warm pass's memo
counters) are written to ``BENCH_translate.json``.

The warm pass is also re-run with structured tracing *enabled* (a real
:class:`~repro.obs.Tracer` exporting into a ring buffer) to measure the
observability layer's overhead: ``traced_seconds`` /
``tracing_overhead`` land in the report, and the disabled path (the
default ``NULL_TRACER``) is compared against the committed baseline
``BENCH_translate.json`` — pass ``--max-regression 0.05`` to fail the
run when the tracing-disabled warm path regressed more than 5%.

A final warm pass pits a bare ``SqliteBackend`` against a fault-free
``ResilientBackend(SqliteBackend)`` on the same exported image: the
armor's translations must match byte-for-byte and
``--max-resilient-overhead 0.02`` fails the run when the wrapper costs
more than 2% on the happy path.

A **repeated-workload** pass measures the translation result cache
(docs/CACHING.md): every workload is expanded into a 50%-repeat mix
(each query once verbatim, once trivially rewritten) and served twice
by a shared translator with the cache off and on.  The cached steady
state must be at least ``--min-cache-speedup`` times faster, every
repeat — including the rewritten ones — must hit via canonical
fingerprints, and the cached translations are checked byte-for-byte
against the fresh ones.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_translate.py
    PYTHONPATH=src python benchmarks/bench_translate.py \
        --workloads textbook --output /tmp/bench.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from typing import Callable

from repro import Database, SchemaFreeTranslator
from repro.core.similarity import clear_string_caches
from repro.datasets import make_course_database, make_movie_database
from repro.obs import RingBufferExporter, Tracer
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
    WorkloadQuery,
)

#: workload name -> (database factory, query list)
WORKLOADS: dict[str, tuple[Callable[[], Database], list[WorkloadQuery]]] = {
    "textbook": (make_movie_database, TEXTBOOK_QUERIES),
    "sophisticated": (make_movie_database, SOPHISTICATED_QUERIES),
    "courses48": (make_course_database, COURSE_QUERIES),
}

TOP_K = 3


def queries_of(workload: list[WorkloadQuery]) -> list[str]:
    return [q.sf_sql or q.gold_sql for q in workload]


def check_generator_invariant(stats: dict) -> None:
    """Frontier accounting must be conservation-exact: every network
    pushed onto a search frontier is later expanded, pruned stale at pop
    time, or abandoned in the queue when the search ends.  A drift here
    means a counter is being double- or under-charged and the search
    telemetry can't be trusted."""
    generator = stats.get("generator") or {}
    if not generator:
        return
    pushed = generator.get("pushed", 0)
    accounted = (
        generator.get("expanded", 0)
        + generator.get("pruned", 0)
        + generator.get("leftover", 0)
    )
    if pushed != accounted:
        raise AssertionError(
            f"generator frontier accounting drifted: pushed={pushed} != "
            f"expanded + pruned + leftover = {accounted} ({generator})"
        )


def run_cold(
    database: Database, queries: list[str]
) -> tuple[float, list, dict]:
    """One fresh translator per query, string caches cleared each time.

    Cold translators see an empty network memo, so this pass is the one
    that exercises the full MTJN search — its aggregated generator
    counters (returned alongside the timings) are where the frontier
    invariant is meaningful per query.
    """
    results = []
    elapsed = 0.0
    generator_totals: dict[str, int] = {}
    for query in queries:
        clear_string_caches()
        translator = SchemaFreeTranslator(database)
        started = time.perf_counter()
        results.append(translator.translate(query, top_k=TOP_K))
        elapsed += time.perf_counter() - started
        stats = translator.last_translation_stats
        if stats is not None:
            as_dict = stats.as_dict()
            check_generator_invariant(as_dict)
            for key, value in as_dict.get("generator", {}).items():
                generator_totals[key] = generator_totals.get(key, 0) + value
    return elapsed, results, generator_totals


def run_warm(database: Database, queries: list[str]) -> tuple[float, list, dict]:
    """One shared translator; timed after a full warming pass.

    Median-of-5: this number is compared *across runs* by the
    ``--max-regression`` baseline gate, so it needs to be robust both
    to scheduler hiccups (which a single sample isn't) and to
    lucky-fast windows (which a min-of-N converges to) — the median is
    the one statistic stable against both tails.  Ratio gates measured
    *within* one run pair their own samples instead
    (``run_warm_resilient``, ``run_artifact_cold``).
    """
    translator = SchemaFreeTranslator(database)
    translator.translate_many(queries, top_k=TOP_K)  # warm the context
    times: list[float] = []
    results: list = []
    as_dict: dict = {}
    for _ in range(5):
        gc.collect()  # keep earlier passes' garbage out of the timing
        started = time.perf_counter()
        results = translator.translate_many(queries, top_k=TOP_K)
        times.append(time.perf_counter() - started)
        stats = translator.last_translation_stats
        as_dict = stats.as_dict() if stats is not None else {}
    check_generator_invariant(as_dict)
    return sorted(times)[len(times) // 2], results, as_dict


def run_warm_traced(
    database: Database, queries: list[str]
) -> tuple[float, list]:
    """The warm pass again, with tracing enabled into a ring buffer."""
    tracer = Tracer(exporters=[RingBufferExporter(capacity=4096)])
    translator = SchemaFreeTranslator(database, tracer=tracer)
    translator.translate_many(queries, top_k=TOP_K)  # warm the context
    started = time.perf_counter()
    results = translator.translate_many(queries, top_k=TOP_K)
    elapsed = time.perf_counter() - started
    return elapsed, results


def run_warm_reflected(
    database: Database, queries: list[str]
) -> tuple[float, list]:
    """The warm pass over a *reflected* SQLite catalog.

    The dataset is exported to an in-memory SQLite database and wrapped
    in :class:`~repro.backends.SqliteBackend`; the translator then sees
    only reflected metadata and backend-sampled statistics.  Timings
    show what catalog reflection + SELECT-based sampling cost relative
    to the native in-memory backend, and the results are checked
    byte-for-byte against the warm pass — reflection must not change a
    single translation.
    """
    from repro.backends import SqliteBackend
    from repro.engine.io import export_to_sqlite

    backend = SqliteBackend(export_to_sqlite(database, ":memory:"))
    translator = SchemaFreeTranslator(backend)
    translator.translate_many(queries, top_k=TOP_K)  # warm the context
    started = time.perf_counter()
    results = translator.translate_many(queries, top_k=TOP_K)
    elapsed = time.perf_counter() - started
    backend.close()
    return elapsed, results


def run_warm_resilient(
    database: Database, queries: list[str], repeats: int = 10
) -> tuple[float, float, list]:
    """The reflected warm pass with and without the resilience armor.

    Both stacks sit on the same exported SQLite image; the armored one
    wraps its backend in :class:`~repro.backends.ResilientBackend` with
    no faults anywhere in sight.  Timings are best-of-*repeats* with
    the stacks alternating back-to-back so noise hits both equally —
    the fault-free armor must be cheap enough to leave on in
    production, and its translations must match the bare backend
    byte-for-byte.  Per-workload ratios still carry a few percent of
    scheduler noise; the overhead gate therefore compares the *sums*
    across every benchmarked workload (see ``main``).
    """
    from repro.backends import ResilientBackend, SqliteBackend
    from repro.engine.io import export_to_sqlite

    bare = SqliteBackend(export_to_sqlite(database, ":memory:"))
    armored = ResilientBackend(
        SqliteBackend(export_to_sqlite(database, ":memory:"))
    )
    t_bare = SchemaFreeTranslator(bare)
    t_armored = SchemaFreeTranslator(armored)
    t_bare.translate_many(queries, top_k=TOP_K)  # warm both contexts
    t_armored.translate_many(queries, top_k=TOP_K)
    bare_seconds = armored_seconds = float("inf")
    results: list = []
    for _ in range(repeats):
        started = time.perf_counter()
        t_bare.translate_many(queries, top_k=TOP_K)
        bare_seconds = min(bare_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        results = t_armored.translate_many(queries, top_k=TOP_K)
        armored_seconds = min(armored_seconds, time.perf_counter() - started)
    bare.close()
    armored.close()
    return bare_seconds, armored_seconds, results


def run_artifact_cold(
    factory: Callable[[], Database], queries: list[str]
) -> tuple[float, float, list, float]:
    """Cold start through a :mod:`repro.artifacts` file.

    A builder process's context is warmed on the workload and published
    as an artifact; then a *fresh* backend (built again from the
    factory, process-level string caches cleared — the stand-in for a
    brand-new worker process) attaches the artifact and serves the
    workload once, timed.  Returns (attach seconds, serving seconds,
    results, warm reference seconds); the gate compares attach + serve
    against the warm reference — this is the ratio that makes
    per-request process fan-out viable.

    Attach + serve is measured five times (each trial a fresh backend
    with the string caches cleared, so every trial is honestly cold)
    and the fastest trial reported.  The denominator is measured here
    too, not taken from the earlier warm pass: each artifact trial is
    bracketed by a warm pass over a separately warmed stack, so the
    ratio is a paired comparison inside one time window — the
    ``run_warm_resilient`` trick — and a drifting machine skews both
    sides equally instead of just one.
    """
    import tempfile

    from repro.artifacts import ArtifactStore, build_artifact, load_context

    builder = factory()
    with tempfile.TemporaryDirectory() as directory:
        store = ArtifactStore(directory)
        path = build_artifact(
            builder, store, warmup=queries, warmup_top_k=TOP_K
        )
        warm_database = factory()
        warm_translator = SchemaFreeTranslator(warm_database)
        warm_translator.translate_many(queries, top_k=TOP_K)  # warm it
        warm_seconds = float("inf")
        best: tuple[float, float, list] | None = None
        for _ in range(5):
            database = factory()
            clear_string_caches()
            # earlier passes left a heap's worth of garbage; collect
            # outside the timed region so its pauses don't land inside
            # a tens-of-milliseconds measurement
            gc.collect()
            started = time.perf_counter()
            context = load_context(path, database)
            load_seconds = time.perf_counter() - started
            translator = SchemaFreeTranslator(database, context=context)
            started = time.perf_counter()
            results = translator.translate_many(queries, top_k=TOP_K)
            serve_seconds = time.perf_counter() - started
            if best is not None:
                check_identical(best[2], results)  # trials must agree
            if best is None or load_seconds + serve_seconds < (
                best[0] + best[1]
            ):
                best = (load_seconds, serve_seconds, results)
            # warm bracket second: the artifact serve just repopulated
            # the process-global string caches, so this measures a
            # genuinely hot stack, not one paying cache rebuild
            gc.collect()
            started = time.perf_counter()
            warm_translator.translate_many(queries, top_k=TOP_K)
            warm_seconds = min(warm_seconds, time.perf_counter() - started)
    return best + (warm_seconds,)


def repeat_mix(queries: list[str]) -> list[str]:
    """A 50%-repeat workload: each query once verbatim and once
    trivially rewritten (whitespace + trailing semicolon), interleaved.
    The rewritten form canonicalizes to the same fingerprint, so a
    result cache must serve the repeat without retranslating."""
    mix: list[str] = []
    for query in queries:
        mix.append(query)
        mix.append(f"  {query} ;")
    return mix


def run_repeated(
    database: Database, queries: list[str]
) -> tuple[float, float, list, list, dict]:
    """The 50%-repeat mix through a shared translator, cache off vs on.

    Both stacks get one warming pass over the mix (context memos hot in
    both; the cached stack's result cache populated) and are then timed
    over the same mix — the steady state of a server seeing repetitive
    traffic.  Returns (uncached seconds, cached seconds, uncached
    results, cached results, cached-pass stats)."""
    import dataclasses

    from repro.core.config import DEFAULT_CONFIG

    mix = repeat_mix(queries)
    plain = SchemaFreeTranslator(database)
    plain.translate_many(mix, top_k=TOP_K)  # warm the context
    started = time.perf_counter()
    fresh_results = plain.translate_many(mix, top_k=TOP_K)
    uncached_seconds = time.perf_counter() - started

    config = dataclasses.replace(
        DEFAULT_CONFIG, result_cache_size=len(mix) + 16
    )
    caching = SchemaFreeTranslator(database, config)
    caching.translate_many(mix, top_k=TOP_K)  # warm context + cache
    started = time.perf_counter()
    cached_results = caching.translate_many(mix, top_k=TOP_K)
    cached_seconds = time.perf_counter() - started
    stats = caching.last_translation_stats
    as_dict = stats.as_dict() if stats is not None else {}
    return (
        uncached_seconds,
        cached_seconds,
        fresh_results,
        cached_results,
        as_dict,
    )


def check_identical(cold: list, warm: list) -> None:
    """The context memoizes — it must never change a single byte."""
    for query_cold, query_warm in zip(cold, warm):
        cold_sql = [t.sql for t in query_cold]
        warm_sql = [t.sql for t in query_warm]
        if cold_sql != warm_sql:
            raise AssertionError(
                f"warm translation diverged from cold:\n"
                f"  cold: {cold_sql}\n  warm: {warm_sql}"
            )


def bench_workload(name: str) -> dict:
    factory, workload = WORKLOADS[name]
    database = factory()
    queries = queries_of(workload)
    cold_seconds, cold_results, cold_generator = run_cold(database, queries)
    warm_seconds, warm_results, warm_stats = run_warm(database, queries)
    check_identical(cold_results, warm_results)
    traced_seconds, traced_results = run_warm_traced(database, queries)
    check_identical(warm_results, traced_results)
    reflected_seconds, reflected_results = run_warm_reflected(
        database, queries
    )
    check_identical(warm_results, reflected_results)
    bare_seconds, resilient_seconds, resilient_results = run_warm_resilient(
        database, queries
    )
    check_identical(warm_results, resilient_results)
    (
        artifact_load_seconds,
        artifact_serve_seconds,
        artifact_results,
        artifact_warm_seconds,
    ) = run_artifact_cold(factory, queries)
    check_identical(warm_results, artifact_results)
    artifact_cold_seconds = artifact_load_seconds + artifact_serve_seconds
    artifact_cold_ratio = (
        artifact_cold_seconds / artifact_warm_seconds
        if artifact_warm_seconds > 0
        else float("inf")
    )
    (
        uncached_seconds,
        cached_seconds,
        fresh_results,
        cached_results,
        cached_stats,
    ) = run_repeated(database, queries)
    check_identical(fresh_results, cached_results)
    cache_memo = cached_stats.get("memo", {})
    cache_lookups = cache_memo.get("result_hits", 0) + cache_memo.get(
        "result_misses", 0
    )
    cache_hit_rate = (
        cache_memo.get("result_hits", 0) / cache_lookups
        if cache_lookups
        else 0.0
    )
    cache_speedup = (
        uncached_seconds / cached_seconds
        if cached_seconds > 0
        else float("inf")
    )
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    overhead = (
        traced_seconds / warm_seconds - 1.0 if warm_seconds > 0 else 0.0
    )
    resilient_overhead = (
        resilient_seconds / bare_seconds - 1.0 if bare_seconds > 0 else 0.0
    )
    row = {
        "queries": len(queries),
        "top_k": TOP_K,
        "cold_generator": cold_generator,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "tracing_overhead": round(overhead, 4),
        "reflected_seconds": round(reflected_seconds, 4),
        "resilient_bare_seconds": round(bare_seconds, 4),
        "resilient_seconds": round(resilient_seconds, 4),
        "resilient_overhead": round(resilient_overhead, 4),
        "speedup": round(speedup, 2),
        "artifact_load_seconds": round(artifact_load_seconds, 4),
        "artifact_cold_seconds": round(artifact_cold_seconds, 4),
        "artifact_warm_seconds": round(artifact_warm_seconds, 4),
        "artifact_cold_ratio": round(artifact_cold_ratio, 2),
        "repeated_uncached_seconds": round(uncached_seconds, 4),
        "repeated_cached_seconds": round(cached_seconds, 4),
        "cache_speedup": round(cache_speedup, 2),
        "cache_hit_rate": round(cache_hit_rate, 4),
        "identical": True,
        "warm_stats": warm_stats,
    }
    print(
        f"{name:>14}: {len(queries):>2} queries  "
        f"cold {cold_seconds:7.3f}s  warm {warm_seconds:7.3f}s  "
        f"traced {traced_seconds:7.3f}s ({overhead:+6.1%})  "
        f"sqlite-reflected {reflected_seconds:7.3f}s  "
        f"resilient {resilient_seconds:7.3f}s ({resilient_overhead:+6.1%})  "
        f"speedup {speedup:5.2f}x  "
        f"artifact-cold {artifact_cold_seconds:7.3f}s "
        f"({artifact_cold_ratio:.2f}x warm)  "
        f"result-cache {cache_speedup:5.2f}x "
        f"({cache_hit_rate:.0%} hits on the repeat mix)"
    )
    return row


def check_regression(
    report: dict, baseline_path: str, max_regression: float
) -> list[str]:
    """Compare tracing-disabled warm timings against the committed
    baseline; returns one message per workload that regressed more
    than ``max_regression`` (fraction, e.g. 0.05)."""
    if not os.path.exists(baseline_path):
        print(f"no baseline at {baseline_path}; skipping regression check")
        return []
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for name, row in report.items():
        base = baseline.get(name, {}).get("warm_seconds")
        if not base:
            continue
        regression = row["warm_seconds"] / base - 1.0
        print(
            f"{name:>14}: warm path {regression:+6.1%} vs baseline "
            f"({base:.3f}s -> {row['warm_seconds']:.3f}s)"
        )
        if regression > max_regression:
            failures.append(
                f"{name}: tracing-disabled warm path regressed "
                f"{regression:.1%} (> {max_regression:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        default=["textbook", "sophisticated", "courses48"],
        help="workloads to benchmark (default: all)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_translate.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_translate.json",
        help="baseline report to compare warm timings against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail when the tracing-disabled warm path is this much "
        "slower than the baseline (e.g. 0.05 for 5%%)",
    )
    parser.add_argument(
        "--max-resilient-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail when the fault-free ResilientBackend warm path is "
        "this much slower than the bare SQLite backend (e.g. 0.02 "
        "for 2%%)",
    )
    parser.add_argument(
        "--max-artifact-cold-ratio",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail when cold translation through a repro.artifacts file "
        "(attach + one workload pass on a fresh backend) exceeds this "
        "multiple of the warm pass on any workload (e.g. 1.5 — the "
        "ratchet holding artifact-based cold start eliminated)",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail when the translation result cache speeds the "
        "repeated-workload pass (50%% repeat mix, steady state) up by "
        "less than this factor on any workload (e.g. 5.0 for 5x)",
    )
    parser.add_argument(
        "--max-network-share",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail when the network stage takes more than this share of "
        "warm translation time on any benchmarked workload (e.g. 0.5 "
        "for 50%% — the ratchet holding the memoized MTJN search fast)",
    )
    args = parser.parse_args(argv)

    report = {name: bench_workload(name) for name in args.workloads}
    failures = []
    if args.max_regression is not None:
        failures = check_regression(
            report, args.baseline, args.max_regression
        )
    if args.max_resilient_overhead is not None:
        # aggregate across workloads: per-workload ratios carry a few
        # percent of scheduler noise that the sum averages away
        total_bare = sum(r["resilient_bare_seconds"] for r in report.values())
        total_armored = sum(r["resilient_seconds"] for r in report.values())
        aggregate = total_armored / total_bare - 1.0 if total_bare > 0 else 0.0
        print(
            f"fault-free ResilientBackend overhead (aggregate): "
            f"{aggregate:+.1%}"
        )
        if aggregate > args.max_resilient_overhead:
            failures.append(
                f"fault-free ResilientBackend overhead {aggregate:.1%} "
                f"(> {args.max_resilient_overhead:.0%} aggregated over "
                f"{', '.join(report)})"
            )
    if args.max_artifact_cold_ratio is not None:
        for name, row in report.items():
            print(
                f"{name:>14}: artifact-cold ratio "
                f"{row['artifact_cold_ratio']:.2f}x warm"
            )
            if row["artifact_cold_ratio"] > args.max_artifact_cold_ratio:
                failures.append(
                    f"{name}: artifact-loaded cold translation is "
                    f"{row['artifact_cold_ratio']:.2f}x warm "
                    f"(> {args.max_artifact_cold_ratio:.1f}x)"
                )
    if args.min_cache_speedup is not None:
        for name, row in report.items():
            if row["cache_speedup"] < args.min_cache_speedup:
                failures.append(
                    f"{name}: result cache sped the repeated workload up "
                    f"only {row['cache_speedup']:.2f}x "
                    f"(< {args.min_cache_speedup:.1f}x)"
                )
            if row["cache_hit_rate"] < 0.999:
                failures.append(
                    f"{name}: repeat mix hit rate "
                    f"{row['cache_hit_rate']:.1%} — rewritten repeats "
                    "must hit via canonicalization"
                )
    if args.max_network_share is not None:
        for name, row in report.items():
            stats = row.get("warm_stats") or {}
            total = stats.get("total_seconds", 0.0)
            network = stats.get("stages", {}).get("network", 0.0)
            share = network / total if total > 0 else 0.0
            print(f"{name:>14}: network stage {share:.1%} of warm time")
            if share > args.max_network_share:
                failures.append(
                    f"{name}: network stage is {share:.0%} of warm "
                    f"translation time (> {args.max_network_share:.0%})"
                )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
