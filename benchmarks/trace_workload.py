"""Run a workload through the concurrent service with observability on.

This is the CI "observability" job's driver: it pushes one of the
shipped workloads through an 8-worker :class:`repro.service.
QueryService` with a real tracer (JSONL exporter) and a metrics
registry attached, then writes both artifacts:

* ``TRACE_<workload>.jsonl`` — one finished span per line (validated
  against the span schema by ``scripts/check_trace.py``);
* ``METRICS_<workload>.json`` — the registry's JSON snapshot (same
  script validates names and shapes).

Run from the repository root::

    PYTHONPATH=src python benchmarks/trace_workload.py
    PYTHONPATH=src python benchmarks/trace_workload.py \
        --workload courses48 --workers 4 --deadline 1.0
"""

from __future__ import annotations

import argparse
import json
from typing import Callable

from repro import Database
from repro.datasets import make_course_database, make_movie_database
from repro.obs import JsonlExporter, MetricsRegistry, Tracer
from repro.service import QueryService, ServiceConfig
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
    WorkloadQuery,
)

#: workload name -> (database factory, query list)
WORKLOADS: dict[str, tuple[Callable[[], Database], list[WorkloadQuery]]] = {
    "textbook": (make_movie_database, TEXTBOOK_QUERIES),
    "sophisticated": (make_movie_database, SOPHISTICATED_QUERIES),
    "courses48": (make_course_database, COURSE_QUERIES),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        default="textbook",
        help="workload to run (default: textbook)",
    )
    parser.add_argument(
        "--workers", type=int, default=8, help="service worker threads"
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=2.0,
        help="per-request deadline in seconds (default: 2.0)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="span JSONL path (default: TRACE_<workload>.jsonl)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="metrics JSON path (default: METRICS_<workload>.json)",
    )
    args = parser.parse_args(argv)
    trace_path = args.trace_out or f"TRACE_{args.workload}.jsonl"
    metrics_path = args.metrics_out or f"METRICS_{args.workload}.json"

    factory, workload = WORKLOADS[args.workload]
    database = factory()
    queries = [q.sf_sql or q.gold_sql for q in workload]

    metrics = MetricsRegistry()
    with JsonlExporter(trace_path) as jsonl:
        tracer = Tracer(exporters=[jsonl])
        config = ServiceConfig(
            workers=max(1, args.workers), deadline=args.deadline
        )
        with QueryService(
            database, config, tracer=tracer, metrics=metrics
        ) as service:
            responses = service.run(queries)

    with open(metrics_path, "w", encoding="utf-8") as handle:
        json.dump(metrics.snapshot(), handle, indent=2)
        handle.write("\n")

    outcomes: dict[str, int] = {}
    for response in responses:
        outcomes[response.outcome] = outcomes.get(response.outcome, 0) + 1
    summary = "  ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
    print(
        f"{args.workload}: {len(responses)} requests over "
        f"{config.workers} workers  {summary}"
    )
    print(f"wrote {trace_path} and {metrics_path}")
    failed = outcomes.get("failed", 0) + outcomes.get("shed", 0)
    if failed:
        print(f"{failed} request(s) failed or were shed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
