"""Figure 16: information-unit costs over the 48 course queries.

Regenerates the paper's bar chart as the per-query (SF-SQL, GUI, SQL)
cost series and asserts its summary: "Schema-free SQLs only specify 33
(resp. 62) percent as many information units as full SQL queries (with a
visual query builder)".
"""

from repro.experiments import run_cost_experiment
from repro.workloads import COURSE_QUERIES


def test_fig16_course_cost(benchmark, course_db):
    report = benchmark.pedantic(
        run_cost_experiment,
        args=(course_db, COURSE_QUERIES),
        kwargs={"check_translation": False},
        rounds=1,
        iterations=1,
    )

    print("\nFigure 16 — information units per course query")
    print(f"{'query':>6} {'SF-SQL':>7} {'GUI':>5} {'SQL':>5}")
    for row in report.rows:
        print(f"{row.qid:>6} {row.sf:>7.0f} {row.gui:>5} {row.sql:>5}")
    sf_ratio = report.ratio_sf_to_sql()
    gui_ratio = report.ratio_gui_to_sql()
    print(
        f"SF-SQL/SQL = {sf_ratio:.2f} (paper 0.33), "
        f"GUI/SQL = {gui_ratio:.2f} (paper 0.62)"
    )
    benchmark.extra_info["sf_to_sql"] = sf_ratio
    benchmark.extra_info["gui_to_sql"] = gui_ratio

    assert sf_ratio < gui_ratio < 1.0
    # the paper's summary ratios, with generous tolerance for our
    # synthetic workload
    assert 0.15 < sf_ratio < 0.55
    assert 0.4 < gui_ratio < 0.85
