"""Parameter ablation (§7.1's tuning, reported but not plotted).

The paper fixed sigma = kref = c = 0.7 and kdef = 0.3 after initial
experiments "not reported for lack of space".  This bench sweeps each
parameter around its default on a subset of the course workload and
reports top-1 accuracy, verifying the defaults sit on a plateau — and
documenting how sensitive the pipeline is to each knob.
"""

import dataclasses

from repro.core import TranslatorConfig
from repro.experiments import run_effectiveness
from repro.workloads import COURSE_QUERIES

#: the 2-4 and 5 buckets: fast to run, still discriminative
SUBSET = [q for q in COURSE_QUERIES if q.bucket() in ("2-4", "5")][:20]

SWEEPS = {
    "sigma": (0.5, 0.7, 0.9),
    "kref": (0.5, 0.7, 0.9),
    "c": (0.5, 0.7, 0.9),
    "kdef": (0.1, 0.3, 0.5),
}


def test_ablation_parameters(benchmark, course_db):
    def sweep():
        results = {}
        for name, values in SWEEPS.items():
            for value in values:
                config = dataclasses.replace(TranslatorConfig(), **{name: value})
                report = run_effectiveness(
                    course_db, course_db, SUBSET, config=config, top_k=1
                )
                top1, _topk, total = report.total
                results[(name, value)] = (top1, total)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation — top-1 correct on the 20-query subset")
    for (name, value), (top1, total) in results.items():
        marker = " <- default" if value in (0.7, 0.3) and (
            (name == "kdef") == (value == 0.3)
        ) else ""
        print(f"  {name}={value}: {top1}/{total}{marker}")
    benchmark.extra_info["ablation"] = {
        f"{name}={value}": top1 for (name, value), (top1, _t) in results.items()
    }

    defaults = {
        name: results[(name, 0.3 if name == "kdef" else 0.7)][0]
        for name in SWEEPS
    }
    # defaults should be within one query of the best value per knob
    for name, values in SWEEPS.items():
        best = max(results[(name, v)][0] for v in values)
        assert defaults[name] >= best - 2, (name, defaults[name], best)
