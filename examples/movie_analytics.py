"""Movie analytics over the 43-relation database, in Schema-free SQL.

Shows how a user with only partial schema knowledge explores the large
synthetic Yahoo-Movie-style database: aggregations, grouping, ranking
and nested queries — all without spelling out a single join path.

Run with:  python examples/movie_analytics.py
"""

from repro import SchemaFreeTranslator
from repro.datasets import make_movie_database

QUERIES = [
    (
        "How many movies per genre?",
        "SELECT genre?.name?, count(movie_genre?.movie_id?) "
        "GROUP BY genre?.name? "
        "ORDER BY count(movie_genre?.movie_id?) DESC",
    ),
    (
        "Which directors made the most movies?",
        "SELECT director?.name?, count(*) "
        "GROUP BY director?.name? "
        "ORDER BY count(*) DESC LIMIT 5",
    ),
    (
        "Recent big-budget productions",
        "SELECT movie?.title?, movie?.budget? "
        "WHERE movie?.release_year? > 2005 AND movie?.budget? > 100000000 "
        "ORDER BY movie?.budget? DESC LIMIT 5",
    ),
    (
        "Companies that produced a Cameron movie",
        "SELECT DISTINCT produce_company?.name? "
        "WHERE director_name? = 'James Cameron'",
    ),
    (
        "Movies longer than the average runtime",
        "SELECT film?.title? "
        "WHERE film?.runtime? > (SELECT avg(movie?.runtime?)) "
        "ORDER BY film?.title? LIMIT 5",
    ),
]


def main() -> None:
    db = make_movie_database()
    print(
        f"Database: {len(db.catalog)} relations, "
        f"{len(db.catalog.foreign_keys)} FK-PK pairs, "
        f"{db.count('movie')} movies, {db.count('person')} people"
    )
    translator = SchemaFreeTranslator(db)
    for intent, schema_free in QUERIES:
        print(f"\n== {intent}")
        print(f"   SF-SQL: {schema_free}")
        best = translator.translate_best(schema_free)
        print(f"   SQL:    {best.sql[:150]}{'...' if len(best.sql) > 150 else ''}")
        result = db.execute(best.query)
        for row in result.rows[:5]:
            print(f"     {row}")
        if len(result.rows) > 5:
            print(f"     ... {len(result.rows) - 5} more rows")


if __name__ == "__main__":
    main()
