"""SQLite backend quickstart: reflect a real SQLite file and query it
schema-free.

The pipeline does not require the in-memory engine: any SQLite
database can be wrapped in ``SqliteBackend``, which reflects the
catalog (tables, types, primary keys, FK edges) from ``PRAGMA``
metadata and sources translation statistics from sampled ``SELECT``\\ s
— no hand-written schema.  Translations are byte-identical to the
in-memory backend's, and execution happens inside SQLite with the
engine's SQL semantics (UDF-backed ``/``, ``%``, scalar functions,
case-sensitive ``LIKE``).

Run with:  PYTHONPATH=src python examples/sqlite_quickstart.py

Equivalent shell session against an existing file:

    python -m repro import movies.sqlite --schema
    python -m repro import movies.sqlite \\
        --execute "SELECT title? WHERE director_name? = 'James Cameron'"
"""

import sqlite3
import tempfile
from pathlib import Path

from repro import SchemaFreeTranslator, SqliteBackend


def build_sqlite_file(path: Path) -> None:
    """An ordinary SQLite database — plain DDL, no repro involved."""
    connection = sqlite3.connect(path)
    connection.executescript(
        """
        CREATE TABLE Person (
            person_id INTEGER PRIMARY KEY,
            name TEXT NOT NULL,
            gender TEXT
        );
        CREATE TABLE Movie (
            movie_id INTEGER PRIMARY KEY,
            title TEXT NOT NULL,
            release_year INTEGER
        );
        CREATE TABLE Director (
            person_id INTEGER REFERENCES Person (person_id),
            movie_id INTEGER REFERENCES Movie (movie_id)
        );
        INSERT INTO Person VALUES
            (1, 'James Cameron', 'male'),
            (2, 'Steven Spielberg', 'male'),
            (3, 'Kathryn Bigelow', 'female');
        INSERT INTO Movie VALUES
            (1, 'Titanic', 1997),
            (2, 'Avatar', 2009),
            (3, 'The Terminal', 2004);
        INSERT INTO Director VALUES (1, 1), (1, 2), (2, 3);
        """
    )
    connection.commit()
    connection.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "movies.sqlite"
        build_sqlite_file(path)

        # Reflection: catalog + FK adjacency straight from PRAGMAs.
        backend = SqliteBackend(path)
        catalog = backend.catalog
        print(
            f"reflected {path.name}: {len(catalog)} relations, "
            f"{len(catalog.foreign_keys)} foreign keys"
        )
        for relation in catalog:
            columns = ", ".join(a.name for a in relation.attributes)
            print(f"  {relation.name}({columns})")

        # The translator sees only the Backend protocol: reflected
        # metadata for names, sampled SELECTs for value statistics.
        translator = SchemaFreeTranslator(backend)
        query = "SELECT title? WHERE director_name? = 'James Cameron'"
        best = translator.translate_best(query)
        print(f"\nSF-SQL : {query}")
        print(f"SQL    : {best.sql}")

        # Execution happens inside SQLite (dialect-lowered AST + the
        # engine's scalar semantics registered as UDFs).
        result = backend.execute(best.query)
        for row in result.rows:
            print(f"  {row}")
        backend.close()


if __name__ == "__main__":
    main()
