"""Schema tolerance: the same queries over two very different schemas.

The paper's §7.3 insight, demonstrated live: one set of Schema-free SQL
queries — written in the 53-relation CourseRank-like vocabulary — runs
against both that schema *and* a developer's compact 21-relation
redesign of the same data.  The translator bridges the vocabulary gap
(``section`` becomes ``offering``, ``completed``+``grade_scale`` become
``transcript``, department names are inlined...).

Run with:  python examples/course_catalog.py
"""

from repro import SchemaFreeTranslator
from repro.datasets import (
    make_course_alt_database,
    make_course_database,
    make_course_world,
)

QUERIES = [
    (
        "Students in the BS in Computer Science program",
        "SELECT student?.name? "
        "WHERE program?.name? = 'BS in Computer Science'",
    ),
    (
        "Who teaches Databases?",
        "SELECT instructor?.name? WHERE course?.title? = 'Databases'",
    ),
    (
        "Grades of Dan Haddad 1",
        "SELECT grade?.letter? WHERE student?.name? = 'Dan Haddad 1'",
    ),
    (
        "Textbooks for the Databases course",
        "SELECT DISTINCT textbook?.title? "
        "WHERE course?.title? = 'Databases'",
    ),
]


def main() -> None:
    world = make_course_world()
    full = make_course_database(world=world)
    compact = make_course_alt_database(world=world)
    print(
        f"Schemas: {len(full.catalog)} relations (CourseRank-like) vs "
        f"{len(compact.catalog)} relations (redesign); same facts."
    )
    translators = {
        "53-relation": SchemaFreeTranslator(full),
        "21-relation": SchemaFreeTranslator(compact),
    }
    databases = {"53-relation": full, "21-relation": compact}

    for intent, schema_free in QUERIES:
        print(f"\n== {intent}")
        print(f"   SF-SQL: {schema_free}")
        answers = {}
        for label, translator in translators.items():
            best = translator.translate_best(schema_free)
            rows = sorted(databases[label].execute(best.query).rows)
            answers[label] = rows
            print(f"   {label}: {best.sql[:120]}")
            print(f"     -> {rows[:4]}{' ...' if len(rows) > 4 else ''}")
        agree = answers["53-relation"] == answers["21-relation"]
        print(f"   answers agree across schemas: {agree}")


if __name__ == "__main__":
    main()
