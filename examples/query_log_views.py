"""View graphs from query logs (paper §5, Figure 5).

A complex join network is hard to guess from scratch, but easy to build
from fragments of previously-seen queries.  This example shows a hard
8-relation query failing on the bare schema graph, then succeeding after
two simpler queries are recorded into the query log and mined into
views — the paper's Figure 15 mechanism, on one concrete query.

Run with:  python examples/query_log_views.py
"""

from repro import SchemaFreeTranslator
from repro.datasets import make_course_database
from repro.experiments import gold_rows, rows_match
from repro.workloads import COURSE_QUERIES

#: C45: Robotics Society members enrolled in CS courses in Fall 2013 —
#: an 8-relation join network
HARD = next(q for q in COURSE_QUERIES if q.qid == "C45")

#: simpler queries whose translations seed the query log
WARMUP = [q for q in COURSE_QUERIES if q.qid in ("C07", "C10", "C38")]


def attempt(translator, db, query) -> bool:
    gold = gold_rows(db, query)
    best = translator.translate_best(query.sf_sql)
    correct = rows_match(db, best, gold, ordered=False)
    print(f"   translation: {best.sql[:140]}...")
    print(f"   correct: {correct}")
    return correct


def confirm_and_record(translator, db, query) -> int:
    """Translate top-10, let the 'DBA' confirm the right interpretation,
    and mine it into the query log — the Figure 15 protocol."""
    gold = gold_rows(db, query)
    for translation in translator.translate(query.sf_sql, top_k=10):
        if rows_match(db, translation, gold, ordered=False):
            return len(translator.record_query_log(translation.query))
    return 0


def main() -> None:
    db = make_course_database()

    print("== Without views (bare schema graph)")
    print(f"   SF-SQL: {HARD.sf_sql}")
    cold = SchemaFreeTranslator(db)
    attempt(cold, db, HARD)

    print("\n== Recording simpler queries into the query log")
    warm = SchemaFreeTranslator(db)
    for query in WARMUP:
        mined = confirm_and_record(warm, db, query)
        print(f"   {query.qid}: confirmed a top-10 translation, mined {mined} view(s)")

    print("\n== With the view graph")
    attempt(warm, db, HARD)


if __name__ == "__main__":
    main()
