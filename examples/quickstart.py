"""Quickstart: build a tiny database and run the paper's Figure 2 query.

This walks the full pipeline on the running example of the paper — the
six-relation movie schema of Figure 1, the Schema-free SQL query of
Figure 2, and the full-SQL translation of Figure 12.

Run with:  python examples/quickstart.py
"""

from repro import Catalog, Database, DataType, SchemaFreeTranslator


def build_database() -> Database:
    """Figure 1's schema: Person, Movie, Company and three bridges."""
    catalog = Catalog("movies")
    catalog.create_relation(
        "Person",
        [
            ("person_id", DataType.INTEGER),
            ("name", DataType.TEXT),
            ("gender", DataType.TEXT),
        ],
        primary_key=["person_id"],
    )
    catalog.create_relation(
        "Movie",
        [
            ("movie_id", DataType.INTEGER),
            ("title", DataType.TEXT),
            ("release_year", DataType.INTEGER),
        ],
        primary_key=["movie_id"],
    )
    catalog.create_relation(
        "Company",
        [("company_id", DataType.INTEGER), ("name", DataType.TEXT)],
        primary_key=["company_id"],
    )
    catalog.create_relation(
        "Actor", [("person_id", DataType.INTEGER), ("movie_id", DataType.INTEGER)]
    )
    catalog.create_relation(
        "Director",
        [("person_id", DataType.INTEGER), ("movie_id", DataType.INTEGER)],
    )
    catalog.create_relation(
        "Movie_Producer",
        [("movie_id", DataType.INTEGER), ("company_id", DataType.INTEGER)],
    )
    catalog.add_foreign_key("Actor", "person_id", "Person")
    catalog.add_foreign_key("Actor", "movie_id", "Movie")
    catalog.add_foreign_key("Director", "person_id", "Person")
    catalog.add_foreign_key("Director", "movie_id", "Movie")
    catalog.add_foreign_key("Movie_Producer", "movie_id", "Movie")
    catalog.add_foreign_key("Movie_Producer", "company_id", "Company")

    db = Database(catalog)
    db.insert_many(
        "Person",
        [
            [1, "James Cameron", "male"],
            [2, "Leonardo DiCaprio", "male"],
            [3, "Kate Winslet", "female"],
            [4, "Sam Worthington", "male"],
        ],
    )
    db.insert_many("Company", [[1, "20th Century Fox"], [2, "Paramount"]])
    db.insert_many(
        "Movie", [[10, "Titanic", 1997], [11, "Avatar", 2009]]
    )
    db.insert_many("Actor", [[2, 10], [3, 10], [4, 11]])
    db.insert_many("Director", [[1, 10], [1, 11]])
    db.insert_many("Movie_Producer", [[10, 1], [10, 2], [11, 1]])
    return db


def main() -> None:
    db = build_database()
    translator = SchemaFreeTranslator(db)

    # Figure 2: wrong names (actor?.name? is really Person.name), a
    # compound guess (director_name?), a missing FROM clause, and no
    # join path at all.
    schema_free = """
        SELECT count(actor?.name?)
        WHERE actor?.gender? = 'male'
          AND director_name? = 'James Cameron'
          AND produce_company? = '20th Century Fox'
          AND year? > 1995 AND year? < 2005
    """

    print("Schema-free SQL (Figure 2):")
    print(schema_free)

    best = translator.translate_best(schema_free)
    print("Translated full SQL (compare with the paper's Figure 12):")
    print(" ", best.sql)
    print("Join-network weight:", round(best.weight, 4))

    result = db.execute(best.query)
    print("Answer:", result.scalar(), "(Leonardo DiCaprio in Titanic)")

    # the top-k interface returns alternative interpretations
    print("\nTop-3 interpretations:")
    for rank, translation in enumerate(translator.translate(schema_free, top_k=3), 1):
        print(f"  {rank}. w={translation.weight:.4f}  {translation.sql[:110]}...")


if __name__ == "__main__":
    main()
