"""Smoke tests for the experiment harness (full runs live in benchmarks/)."""

import pytest

from repro.datasets import (
    make_course_alt_database,
    make_course_database,
    make_course_world,
    make_movie_database,
)
from repro.experiments import (
    gold_rows,
    rows_match,
    run_cost_experiment,
    run_effectiveness,
    run_efficiency,
    run_fig14,
)
from repro.workloads import COURSE_QUERIES, SOPHISTICATED_QUERIES, TEXTBOOK_QUERIES
from repro.workloads.efficiency import EFFICIENCY_QUERIES


@pytest.fixture(scope="module")
def movie_db():
    return make_movie_database()


@pytest.fixture(scope="module")
def course_dbs():
    world = make_course_world()
    return make_course_database(world=world), make_course_alt_database(world=world)


class TestCorrectnessJudging:
    def test_gold_rows_sorted_when_unordered(self, movie_db):
        query = TEXTBOOK_QUERIES[0]
        rows = gold_rows(movie_db, query)
        assert rows == sorted(rows)

    def test_gold_rows_order_preserved_with_order_by(self, movie_db):
        query = next(q for q in TEXTBOOK_QUERIES if "ORDER BY" in q.gold_sql)
        rows = gold_rows(movie_db, query)
        years_desc = [r for r in rows]
        assert years_desc  # preserves gold ordering

    def test_rows_match_rejects_broken_translation(self, movie_db):
        from repro.core.translator import Translation
        from repro.sqlkit import parse

        bogus = Translation(parse("SELECT title FROM movie WHERE 1 = 2"), 1.0)
        gold = gold_rows(movie_db, TEXTBOOK_QUERIES[0])
        assert not rows_match(movie_db, bogus, gold, ordered=False)


class TestRunners:
    def test_cost_experiment_subset(self, movie_db):
        report = run_cost_experiment(movie_db, TEXTBOOK_QUERIES[:4])
        assert len(report.rows) == 4
        assert all(r.sf <= r.gui <= r.sql for r in report.rows)
        assert 0 < report.ratio_sf_to_sql() <= 1

    def test_fig14_subset(self, movie_db):
        rows = run_fig14(movie_db, SOPHISTICATED_QUERIES[:1])
        assert rows[0].users_correct == rows[0].users_total == 5

    def test_effectiveness_subset(self, course_dbs):
        course_db, _alt = course_dbs
        subset = [q for q in COURSE_QUERIES if q.bucket() == "2-4"][:4]
        report = run_effectiveness(course_db, course_db, subset, top_k=3)
        top1, topk, total = report.total
        assert total == 4
        assert 0 <= top1 <= topk <= total

    def test_effectiveness_cross_schema(self, course_dbs):
        course_db, alt_db = course_dbs
        subset = [q for q in COURSE_QUERIES if q.qid in ("C01", "C02")]
        report = run_effectiveness(alt_db, course_db, subset, top_k=3)
        assert report.total[2] == 2

    def test_effectiveness_views_accumulate(self, course_dbs):
        course_db, _alt = course_dbs
        subset = [q for q in COURSE_QUERIES if q.qid in ("C01", "C02", "C07")]
        report = run_effectiveness(
            course_db, course_db, subset, use_views=True, top_k=10
        )
        assert report.total[2] == 3

    def test_efficiency_subset(self, course_dbs):
        course_db, _alt = course_dbs
        report = run_efficiency(course_db, EFFICIENCY_QUERIES[:2], repeat=1)
        assert {p.algorithm for p in report.points} == {
            "regular", "rightmost", "ours",
        }
        for point in report.points:
            assert point.seconds >= 0
            assert point.found >= 1

    def test_efficiency_series_lookup(self, course_dbs):
        course_db, _alt = course_dbs
        report = run_efficiency(course_db, EFFICIENCY_QUERIES[:1], repeat=1)
        series = report.series("ours", 1)
        assert list(series) == [2]
