"""Shared fixtures: the paper's Figure 1 movie schema and sample data."""

from __future__ import annotations

import pytest

from repro import Catalog, Database, DataType, SchemaFreeTranslator


def make_fig1_catalog() -> Catalog:
    """The running example's schema: 6 relations, 6 FK-PK pairs."""
    catalog = Catalog("movies-fig1")
    catalog.create_relation(
        "Person",
        [
            ("person_id", DataType.INTEGER),
            ("name", DataType.TEXT),
            ("gender", DataType.TEXT),
        ],
        primary_key=["person_id"],
    )
    catalog.create_relation(
        "Movie",
        [
            ("movie_id", DataType.INTEGER),
            ("title", DataType.TEXT),
            ("release_year", DataType.INTEGER),
        ],
        primary_key=["movie_id"],
    )
    catalog.create_relation(
        "Company",
        [("company_id", DataType.INTEGER), ("name", DataType.TEXT)],
        primary_key=["company_id"],
    )
    catalog.create_relation(
        "Actor",
        [("person_id", DataType.INTEGER), ("movie_id", DataType.INTEGER)],
    )
    catalog.create_relation(
        "Director",
        [("person_id", DataType.INTEGER), ("movie_id", DataType.INTEGER)],
    )
    catalog.create_relation(
        "Movie_Producer",
        [("movie_id", DataType.INTEGER), ("company_id", DataType.INTEGER)],
    )
    for source, attribute, target in [
        ("Actor", "person_id", "Person"),
        ("Actor", "movie_id", "Movie"),
        ("Director", "person_id", "Person"),
        ("Director", "movie_id", "Movie"),
        ("Movie_Producer", "movie_id", "Movie"),
        ("Movie_Producer", "company_id", "Company"),
    ]:
        catalog.add_foreign_key(source, attribute, target)
    return catalog


def populate_fig1(db: Database) -> None:
    db.insert("Person", [1, "James Cameron", "male"])
    db.insert("Person", [2, "Leonardo DiCaprio", "male"])
    db.insert("Person", [3, "Kate Winslet", "female"])
    db.insert("Person", [4, "Sam Worthington", "male"])
    db.insert("Person", [5, "Tom Hanks", "male"])
    db.insert("Person", [6, "Steven Spielberg", "male"])
    db.insert("Company", [1, "20th Century Fox"])
    db.insert("Company", [2, "Paramount"])
    db.insert("Company", [3, "DreamWorks"])
    db.insert("Movie", [10, "Titanic", 1997])
    db.insert("Movie", [11, "Avatar", 2009])
    db.insert("Movie", [12, "The Terminal", 2004])
    db.insert("Actor", [2, 10])
    db.insert("Actor", [3, 10])
    db.insert("Actor", [4, 11])
    db.insert("Actor", [5, 12])
    db.insert("Director", [1, 10])
    db.insert("Director", [1, 11])
    db.insert("Director", [6, 12])
    db.insert("Movie_Producer", [10, 1])
    db.insert("Movie_Producer", [10, 2])
    db.insert("Movie_Producer", [11, 1])
    db.insert("Movie_Producer", [12, 3])


@pytest.fixture(scope="session")
def fig1_db() -> Database:
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return db


@pytest.fixture()
def fig1_translator(fig1_db) -> SchemaFreeTranslator:
    return SchemaFreeTranslator(fig1_db)
