"""Shared helpers for core-layer tests."""

from repro.core import TranslatorConfig, View, ViewGraph, ViewJoin
from repro.core.mapper import RelationTreeMapper
from repro.core.relation_tree import build_relation_trees
from repro.core.similarity import SimilarityEvaluator
from repro.core.triples import extract
from repro.core.view_graph import ExtendedViewGraph
from repro.sqlkit import parse

PAPER_QUERY = (
    "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
    "and director_name? = 'James Cameron' "
    "and produce_company? = '20th Century Fox' "
    "and year? > 1995 and year? < 2005"
)

#: Figure 5's view: Person-Actor-Movie-Director-Person
FIG5_VIEW = View(
    name="fig5",
    relations=("Person", "Actor", "Movie", "Director", "Person"),
    joins=(
        ViewJoin(0, "person_id", 1, "person_id"),
        ViewJoin(1, "movie_id", 2, "movie_id"),
        ViewJoin(2, "movie_id", 3, "movie_id"),
        ViewJoin(3, "person_id", 4, "person_id"),
    ),
    source="log",
)


def make_xgraph(db, sql=PAPER_QUERY, views=(), config=None):
    config = config or TranslatorConfig()
    trees = build_relation_trees(extract(parse(sql)))
    evaluator = SimilarityEvaluator(db, config)
    mapper = RelationTreeMapper(db, config, evaluator)
    mappings = mapper.map_trees(trees)
    graph = ViewGraph(db.catalog, views)
    return (
        ExtendedViewGraph(graph, trees, mappings, evaluator, config),
        trees,
        mappings,
    )
