"""Unit tests for the SQL / Schema-free SQL parser."""

import pytest

from repro.sqlkit import SqlSyntaxError, ast, parse, parse_expression


class TestSelectStructure:
    def test_minimal_select(self):
        query = parse("SELECT a FROM t")
        assert isinstance(query, ast.Select)
        assert len(query.items) == 1
        assert isinstance(query.from_items[0], ast.TableRef)

    def test_select_without_from(self):
        query = parse("SELECT name? WHERE year? > 1995")
        assert query.from_items == ()
        assert query.where is not None

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT ALL a FROM t").distinct

    def test_star(self):
        query = parse("SELECT * FROM t")
        assert isinstance(query.items[0].expr, ast.Star)

    def test_qualified_star(self):
        query = parse("SELECT t.* FROM t")
        star = query.items[0].expr
        assert isinstance(star, ast.Star) and star.qualifier.text == "t"

    def test_aliases(self):
        query = parse("SELECT a AS x, b y FROM t AS u, v w")
        assert query.items[0].alias == "x"
        assert query.items[1].alias == "y"
        assert query.from_items[0].alias == "u"
        assert query.from_items[1].alias == "w"

    def test_group_by_having(self):
        query = parse(
            "SELECT g, count(*) FROM t GROUP BY g HAVING count(*) > 2"
        )
        assert len(query.group_by) == 1
        assert query.having is not None

    def test_order_by_directions(self):
        query = parse("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [item.ascending for item in query.order_by] == [
            False,
            True,
            True,
        ]

    def test_limit_offset(self):
        query = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert query.limit == 10 and query.offset == 5

    def test_semicolon_tolerated(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t garbage! garbage")

    def test_union(self):
        query = parse("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(query, ast.SetOp) and not query.all

    def test_union_all(self):
        query = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert query.all

    def test_explicit_join(self):
        query = parse("SELECT a FROM t JOIN u ON t.id = u.id LEFT JOIN v ON u.x = v.x")
        join = query.from_items[0]
        assert isinstance(join, ast.Join) and join.kind == "left"
        assert isinstance(join.left, ast.Join) and join.left.kind == "inner"


class TestExpressions:
    def test_precedence_and_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "and"

    def test_parentheses_override(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "and"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "not"

    def test_between(self):
        expr = parse_expression("y BETWEEN 1995 AND 2005")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = parse_expression("y NOT BETWEEN 1 AND 2")
        assert expr.negated

    def test_in_list(self):
        expr = parse_expression("g IN ('a', 'b')")
        assert isinstance(expr, ast.InList) and len(expr.items) == 2

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT id FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_like(self):
        expr = parse_expression("title LIKE '%Star%'")
        assert isinstance(expr, ast.Like)

    def test_is_null_and_not_null(self):
        assert not parse_expression("x IS NULL").negated
        assert parse_expression("x IS NOT NULL").negated

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.Exists)

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT max(y) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_quantified_any(self):
        expr = parse_expression("x > ANY (SELECT y FROM t)")
        assert isinstance(expr, ast.QuantifiedCompare)
        assert expr.quantifier == "any"

    def test_case_searched(self):
        expr = parse_expression(
            "CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END"
        )
        assert isinstance(expr, ast.Case) and expr.operand is None

    def test_case_simple(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
        assert expr.operand is not None

    def test_function_call(self):
        expr = parse_expression("count(DISTINCT name)")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "count" and expr.distinct

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_not_equal_normalised(self):
        assert parse_expression("a != 1").op == "<>"

    def test_null_literal(self):
        assert parse_expression("NULL").value is None


class TestSchemaFreeForms:
    def test_guessed_column(self):
        expr = parse_expression("year?")
        assert isinstance(expr, ast.ColumnRef)
        assert expr.attribute.certainty is ast.Certainty.GUESS

    def test_guessed_qualified(self):
        expr = parse_expression("actor?.name?")
        assert expr.relation.certainty is ast.Certainty.GUESS
        assert expr.attribute.certainty is ast.Certainty.GUESS

    def test_mixed_certainty(self):
        expr = parse_expression("actor.name?")
        assert expr.relation.certainty is ast.Certainty.EXACT
        assert expr.attribute.certainty is ast.Certainty.GUESS

    def test_var_placeholder_shared(self):
        query = parse("SELECT ?x.a WHERE ?x.b = 1")
        refs = [n for n in query.walk() if isinstance(n, ast.ColumnRef)]
        assert all(r.relation.certainty is ast.Certainty.VAR for r in refs)
        assert refs[0].relation.text == refs[1].relation.text == "x"

    def test_anonymous_placeholders_unique(self):
        query = parse("SELECT ? , ? FROM t")
        refs = [n for n in query.walk() if isinstance(n, ast.ColumnRef)]
        assert refs[0].attribute.text != refs[1].attribute.text
        assert all(
            r.attribute.certainty is ast.Certainty.ANON for r in refs
        )

    def test_guessed_table_in_from(self):
        query = parse("SELECT a FROM movies? m")
        table = query.from_items[0]
        assert table.name.certainty is ast.Certainty.GUESS
        assert table.alias == "m"

    def test_paper_figure2_query(self):
        query = parse(
            "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
            "and director_name? = 'James Cameron' "
            "and produce_company? = '20th Century Fox' "
            "and year? > 1995 and year? < 2005"
        )
        assert query.from_items == ()
        guesses = [
            n
            for n in query.walk()
            if isinstance(n, ast.ColumnRef)
            and n.attribute.certainty is ast.Certainty.GUESS
        ]
        assert len(guesses) == 6


class TestAstUtilities:
    def test_walk_covers_subqueries(self):
        query = parse("SELECT a FROM t WHERE x IN (SELECT y FROM u)")
        tables = [n for n in query.walk() if isinstance(n, ast.TableRef)]
        assert {t.name.text for t in tables} == {"t", "u"}

    def test_subqueries_of_first_level_only(self):
        query = parse(
            "SELECT a FROM t WHERE x IN "
            "(SELECT y FROM u WHERE z IN (SELECT w FROM v))"
        )
        direct = list(ast.subqueries_of(query))
        assert len(direct) == 1
        nested = list(ast.subqueries_of(direct[0]))
        assert len(nested) == 1

    def test_transform_replaces_nodes(self):
        expr = parse_expression("a + 1")

        def bump(node):
            if isinstance(node, ast.Literal) and node.value == 1:
                return ast.Literal(2)
            return None

        new = ast.transform(expr, bump)
        assert new.right.value == 2
        assert expr.right.value == 1  # original untouched
