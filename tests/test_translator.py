"""Integration tests for the end-to-end translator (paper Figures 2 & 12)."""

import pytest

from repro import SchemaFreeTranslator, TranslationError, TranslatorConfig
from repro.sqlkit import ast

from tests.helpers import FIG5_VIEW, PAPER_QUERY


class TestPaperRunningExample:
    def test_top1_matches_figure12(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(PAPER_QUERY)
        sql = best.sql
        # the seven relations, Person twice
        assert sql.count("Person AS") == 2
        for name in ("Actor", "Director", "Movie", "Movie_Producer", "Company"):
            assert name in sql
        # the four rewritten value conditions of Figure 12
        assert ".gender = 'male'" in sql
        assert ".name = 'James Cameron'" in sql
        assert "Company.name = '20th Century Fox'" in sql
        assert "Movie.release_year > 1995" in sql
        # evaluates to the correct answer: DiCaprio only
        assert fig1_db.execute(best.query).scalar() == 1

    def test_top_k_returns_alternatives(self, fig1_translator):
        translations = fig1_translator.translate(PAPER_QUERY, top_k=3)
        assert len(translations) >= 2
        assert translations[0].weight >= translations[1].weight
        assert translations[0].sql != translations[1].sql

    def test_execute_shortcut(self, fig1_translator):
        result = fig1_translator.execute(PAPER_QUERY)
        assert result.scalar() == 1


class TestSchemaKnowledgeSpectrum:
    """SF-SQL spans full SQL down to bare structured keywords (§1)."""

    def test_full_sql_passes_through_semantically(self, fig1_translator, fig1_db):
        full = (
            "SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id AND d.movie_id = 10"
        )
        best = fig1_translator.translate_best(full)
        assert fig1_db.execute(best.query).rows == [("James Cameron",)]

    def test_missing_from_clause_completed(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            "SELECT title? WHERE director?.name? = 'Steven Spielberg'"
        )
        assert fig1_db.execute(best.query).rows == [("The Terminal",)]

    def test_inconsistent_user_vocabulary(self, fig1_translator, fig1_db):
        # actor?.name? and director_name? in the same query (paper Ex. 1)
        best = fig1_translator.translate_best(
            "SELECT actor?.name? WHERE director_name? = 'Steven Spielberg'"
        )
        assert fig1_db.execute(best.query).rows == [("Tom Hanks",)]

    def test_anonymous_placeholder_with_condition(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            "SELECT movie?.title? WHERE movie?.? = 1997"
        )
        result = fig1_db.execute(best.query)
        assert ("Titanic",) in result.rows

    def test_var_placeholder_binds_same_element(self, fig1_translator):
        best = fig1_translator.translate_best(
            "SELECT ?x.title? WHERE ?x.release_year? > 2000"
        )
        assert "Movie" in best.sql

    def test_aggregation_preserved(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            "SELECT count(?m.title?) WHERE ?m.year? > 2000"
        )
        assert fig1_db.execute(best.query).scalar() == 2

    def test_group_by_preserved(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            "SELECT gender?, count(*) FROM person? GROUP BY gender?"
        )
        rows = dict(fig1_db.execute(best.query).rows)
        assert rows == {"male": 5, "female": 1}

    def test_order_by_and_limit_preserved(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            "SELECT title? FROM movies? ORDER BY year? DESC LIMIT 1"
        )
        assert fig1_db.execute(best.query).rows == [("Avatar",)]


class TestNestedQueries:
    def test_uncorrelated_subquery_translated(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            "SELECT name? FROM person? WHERE person?.person_id? IN "
            "(SELECT person_id? FROM director?) ORDER BY name?"
        )
        result = fig1_db.execute(best.query)
        assert result.rows == [("James Cameron",), ("Steven Spielberg",)]

    def test_scalar_subquery_translated(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            "SELECT title? FROM movie? WHERE movie?.release_year? = "
            "(SELECT max(year?) FROM movies?)"
        )
        assert fig1_db.execute(best.query).rows == [("Avatar",)]

    def test_union_translated_blockwise(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            "SELECT person?.name? WHERE person?.gender? = 'female' "
            "UNION SELECT company?.name? WHERE company?.name? = 'Paramount'"
        )
        rows = set(fig1_db.execute(best.query).rows)
        assert rows == {("Kate Winslet",), ("Paramount",)}


class TestUserJoinFragments:
    def test_partial_join_path_becomes_view(self, fig1_translator, fig1_db):
        # the user spells out one join; the system completes the rest
        best = fig1_translator.translate_best(
            "SELECT person?.name? WHERE person?.person_id? = director?.person_id? "
            "AND movie?.title? = 'Titanic'"
        )
        assert fig1_db.execute(best.query).rows == [("James Cameron",)]


class TestQueryLogViews:
    def test_log_views_recorded(self, fig1_translator):
        views = fig1_translator.record_query_log(
            "SELECT count(P2.name) FROM Person AS P1, Actor, Movie, "
            "Director, Person AS P2 WHERE P1.name = 'Tom Hanks' "
            "AND P1.person_id = Actor.person_id "
            "AND Actor.movie_id = Movie.movie_id "
            "AND Movie.movie_id = Director.movie_id "
            "AND Director.person_id = P2.person_id"
        )
        assert len(views) == 1
        assert views[0].size == 5

    def test_views_guide_translation(self, fig1_db):
        with_views = SchemaFreeTranslator(fig1_db, views=[FIG5_VIEW])
        best = with_views.translate_best(PAPER_QUERY)
        assert fig1_db.execute(best.query).scalar() == 1


class TestErrors:
    def test_untranslatable_tree_raises(self, fig1_translator):
        with pytest.raises(TranslationError):
            # no relation remotely similar and the condition matches nothing
            SchemaFreeTranslator(
                fig1_translator.database,
                TranslatorConfig(kdef=0.0),
            ).translate_best("SELECT xyzzyqwfp?.zzz?")

    def test_constant_query_translates_trivially(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best("SELECT 1 + 1")
        assert fig1_db.execute(best.query).scalar() == 2

    def test_result_is_executable_sql_text(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(PAPER_QUERY)
        # the rendered text itself reparses and runs
        assert fig1_db.execute(best.sql).scalar() == 1
