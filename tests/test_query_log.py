"""Unit tests for query-log view mining (paper §5.1, Figure 5)."""

import pytest

from repro.core.query_log import QueryLog, views_from_sql


class TestViewsFromSql:
    def test_figure5_view(self, fig1_db):
        views = views_from_sql(
            fig1_db.catalog,
            "SELECT count(P2.name) FROM Person AS P1, Actor, Movie, "
            "Director, Person AS P2 WHERE P1.name = 'Tom Hanks' "
            "AND P1.person_id = Actor.person_id "
            "AND Actor.movie_id = Movie.movie_id "
            "AND Movie.movie_id = Director.movie_id "
            "AND Director.person_id = P2.person_id",
        )
        assert len(views) == 1
        view = views[0]
        assert view.size == 5
        assert sorted(view.relations) == [
            "Actor", "Director", "Movie", "Person", "Person",
        ]
        assert len(view.joins) == 4

    def test_single_relation_query_yields_no_views(self, fig1_db):
        assert views_from_sql(
            fig1_db.catalog, "SELECT title FROM Movie WHERE release_year > 2000"
        ) == []

    def test_value_conditions_ignored(self, fig1_db):
        views = views_from_sql(
            fig1_db.catalog,
            "SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id AND p.gender = 'male'",
        )
        assert len(views) == 1 and len(views[0].joins) == 1

    def test_disconnected_parts_become_separate_views(self, fig1_db):
        views = views_from_sql(
            fig1_db.catalog,
            "SELECT 1 FROM Person p, Director d, Movie m, Movie_Producer mp, "
            "Company c "
            "WHERE p.person_id = d.person_id "
            "AND mp.company_id = c.company_id",
        )
        sizes = sorted(view.size for view in views)
        assert sizes == [2, 2]

    def test_cycles_reduced_to_spanning_tree(self, fig1_db):
        views = views_from_sql(
            fig1_db.catalog,
            "SELECT 1 FROM Actor a, Director d, Person p, Movie m "
            "WHERE a.person_id = p.person_id AND a.movie_id = m.movie_id "
            "AND d.person_id = p.person_id AND d.movie_id = m.movie_id",
        )
        assert len(views) == 1
        view = views[0]
        assert len(view.joins) == view.size - 1  # tree

    def test_explicit_join_syntax_mined(self, fig1_db):
        views = views_from_sql(
            fig1_db.catalog,
            "SELECT p.name FROM Person p JOIN Director d "
            "ON p.person_id = d.person_id",
        )
        assert len(views) == 1

    def test_unknown_relations_skipped(self, fig1_db):
        views = views_from_sql(
            fig1_db.catalog,
            "SELECT 1 FROM Person p, Ghost g WHERE p.person_id = g.person_id",
        )
        assert views == []

    def test_unqualified_join_columns_resolved_when_unique(self, fig1_db):
        views = views_from_sql(
            fig1_db.catalog,
            "SELECT title FROM Movie, Movie_Producer, Company "
            "WHERE Movie.movie_id = Movie_Producer.movie_id "
            "AND Movie_Producer.company_id = Company.company_id",
        )
        assert len(views) == 1 and views[0].size == 3

    def test_outermost_block_only(self, fig1_db):
        views = views_from_sql(
            fig1_db.catalog,
            "SELECT title FROM Movie WHERE movie_id IN "
            "(SELECT d.movie_id FROM Director d, Person p "
            "WHERE d.person_id = p.person_id)",
        )
        assert views == []


class TestQueryLog:
    def test_accumulates_views(self, fig1_db):
        log = QueryLog(fig1_db.catalog)
        log.record(
            "SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id"
        )
        log.record(
            "SELECT p.name FROM Person p, Actor a "
            "WHERE p.person_id = a.person_id"
        )
        assert len(log.views) == 2

    def test_view_names_unique(self, fig1_db):
        log = QueryLog(fig1_db.catalog)
        log.record(
            "SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id"
        )
        log.record(
            "SELECT p.name FROM Person p, Actor a "
            "WHERE p.person_id = a.person_id"
        )
        names = [view.name for view in log.views]
        assert len(names) == len(set(names))
