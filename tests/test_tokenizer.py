"""Unit tests for the SQL / Schema-free SQL tokenizer."""

import pytest

from repro.sqlkit import SqlSyntaxError, TokenType, tokenize


def types(sql):
    return [t.type for t in tokenize(sql)][:-1]  # strip EOF


def values(sql):
    return [t.value for t in tokenize(sql)][:-1]


class TestBasics:
    def test_empty_input_yields_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_keywords_case_insensitive(self):
        assert types("SELECT select SeLeCt") == [TokenType.KEYWORD] * 3

    def test_identifier(self):
        assert types("person") == [TokenType.IDENT]

    def test_identifier_with_digits_and_underscores(self):
        assert values("movie_2_id") == ["movie_2_id"]

    def test_number_integer(self):
        tokens = tokenize("1995")
        assert tokens[0].type is TokenType.NUMBER and tokens[0].value == "1995"

    def test_number_float(self):
        assert values("3.14") == ["3.14"]

    def test_number_then_dot_ident_not_merged(self):
        assert types("1.name") == [
            TokenType.NUMBER,
            TokenType.DOT,
            TokenType.IDENT,
        ]

    def test_string_literal(self):
        tokens = tokenize("'James Cameron'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "James Cameron"

    def test_string_escape_doubled_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_operators_longest_match(self):
        assert values("a <= b <> c != d || e") == [
            "a", "<=", "b", "<>", "c", "!=", "d", "||", "e",
        ]

    def test_line_comment_skipped(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("/* oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a @ b")

    def test_double_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "weird name"


class TestSchemaFreeMarkers:
    def test_guess(self):
        tokens = tokenize("actor?")
        assert tokens[0].type is TokenType.GUESS and tokens[0].value == "actor"

    def test_guess_dotted(self):
        assert types("actor?.name?") == [
            TokenType.GUESS,
            TokenType.DOT,
            TokenType.GUESS,
        ]

    def test_var_placeholder(self):
        tokens = tokenize("?x")
        assert tokens[0].type is TokenType.VAR and tokens[0].value == "x"

    def test_anonymous_placeholder(self):
        tokens = tokenize("?")
        assert tokens[0].type is TokenType.ANON

    def test_anonymous_before_operator(self):
        assert types("? > 5") == [
            TokenType.ANON,
            TokenType.OPERATOR,
            TokenType.NUMBER,
        ]

    def test_space_separates_guess_from_anon(self):
        # ``foo ?`` is an exact identifier followed by an anonymous marker
        assert types("foo ?") == [TokenType.IDENT, TokenType.ANON]

    def test_keyword_with_question_mark_is_guess(self):
        # ``order?`` must not lex as the ORDER keyword
        tokens = tokenize("order?")
        assert tokens[0].type is TokenType.GUESS

    def test_positions_recorded(self):
        tokens = tokenize("a = 'x'")
        assert [t.position for t in tokens[:-1]] == [0, 2, 4]
