"""Tests for the shared TranslationContext: reuse semantics, cross-query
memoization, invalidation, and the batched translate_many API."""

import pytest

from repro import (
    Catalog,
    Database,
    DataType,
    SchemaFreeTranslator,
    TranslationContext,
    TranslatorConfig,
)
from repro.datasets import make_course_database
from repro.workloads import COURSE_QUERIES


@pytest.fixture(scope="module")
def course_db():
    return make_course_database()


def make_tiny_db():
    catalog = Catalog("tiny")
    catalog.create_relation(
        "person",
        [("person_id", DataType.INTEGER), ("name", DataType.TEXT)],
        primary_key=["person_id"],
    )
    db = Database(catalog)
    db.insert("person", [1, "Ada"])
    db.insert("person", [2, "Grace"])
    return db


class TestContextReuse:
    def test_neighbors_built_once_at_construction(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db)
        context = translator.context
        assert context.stats.neighbor_builds == len(fig1_db.catalog)
        translator.translate("SELECT actor?.name?")
        translator.translate("SELECT movie?.title?")
        assert context.stats.neighbor_builds == len(fig1_db.catalog)

    def test_samples_shared_across_queries(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db)
        context = translator.context
        translator.translate("SELECT name? WHERE gender? = 'male'")
        builds = context.stats.sample_builds
        assert builds > 0
        translator.translate("SELECT name? WHERE gender? = 'female'")
        # same columns probed again: no sample is materialised twice
        assert context.stats.sample_builds == builds
        assert context.stats.sample_hits > 0

    def test_tree_similarity_memoized_across_queries(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db)
        context = translator.context
        translator.translate("SELECT actor?.name? WHERE actor?.gender? = 'male'")
        misses = context.stats.tree_sim_misses
        hits = context.stats.tree_sim_hits
        translator.translate("SELECT actor?.name? WHERE actor?.gender? = 'male'")
        # a structurally identical query is a pure memo hit
        assert context.stats.tree_sim_misses == misses
        assert context.stats.tree_sim_hits > hits

    def test_context_shared_across_translators(self, fig1_db):
        context = TranslationContext(fig1_db)
        first = SchemaFreeTranslator(fig1_db, context=context)
        second = SchemaFreeTranslator(fig1_db, context=context)
        assert first.context is second.context
        first.translate("SELECT actor?.name?")
        misses = context.stats.tree_sim_misses
        second.translate("SELECT actor?.name?")
        assert context.stats.tree_sim_misses == misses

    def test_memo_hits_reported_in_translation_stats(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db)
        translator.translate("SELECT actor?.name?")
        second = translator.translate("SELECT actor?.name?")
        stats = second[0].stats
        assert stats is not None
        assert stats.memo.get("tree_sim_hits", 0) > 0
        assert stats.memo.get("tree_sim_misses", 0) == 0

    def test_degraded_cold_query_reports_no_memo_hits(self, fig1_db):
        """Regression: rung-2 re-probing of (tree, relation) pairs the
        interrupted full rung already scored used to be counted as memo
        *hits*, inflating hit rates on every degraded query.  A cold
        context has nothing memoized — the first probe of each pair in
        a translate() call must count once, later re-probes not at all.
        """
        from repro.core.resilience import Budget

        translator = SchemaFreeTranslator(fig1_db)
        translations = translator.translate(
            "SELECT name? WHERE director_name? = 'James Cameron'",
            budget=Budget(max_candidates=10),
        )
        assert translations[0].rung != "full"  # the ladder did engage
        memo = translator.last_translation_stats.memo
        assert memo["tree_sim_hits"] == 0
        assert memo["tree_sim_misses"] > 0

    def test_batch_replay_memo_hits_mirror_misses(self, fig1_db):
        """Replaying a query verbatim must report exactly one hit per
        first-pass miss — not more (double counting), not fewer."""
        translator = SchemaFreeTranslator(fig1_db)
        query = "SELECT name? WHERE director_name? = 'James Cameron'"
        translator.translate_many([query, query])
        memo = translator.last_translation_stats.memo
        assert memo["tree_sim_misses"] > 0
        assert memo["tree_sim_hits"] == memo["tree_sim_misses"]

    def test_stage_times_recorded(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db)
        translations = translator.translate(
            "SELECT count(actor?.name?) WHERE director_name? = 'James Cameron'"
        )
        stats = translations[0].stats
        assert {"parse", "map", "network", "compose"} <= set(stats.stages)
        assert stats.total_seconds > 0
        assert stats.candidates > 0
        assert translator.last_translation_stats is stats

    def test_insert_invalidates_data_derived_caches(self):
        db = make_tiny_db()
        translator = SchemaFreeTranslator(db)
        context = translator.context
        sql = "SELECT name? WHERE name? = 'Alan'"
        translator.translate(sql)
        assert context.stats.invalidations == 0
        assert "Alan" not in context.column_sample("person", "name")
        db.insert("person", [3, "Alan"])
        translator.translate(sql)
        assert context.stats.invalidations == 1
        # the sample was rebuilt and the new tuple is visible to it
        assert "Alan" in context.column_sample("person", "name")

    def test_wrong_database_rejected(self, fig1_db):
        other = make_tiny_db()
        context = TranslationContext(other)
        with pytest.raises(ValueError):
            SchemaFreeTranslator(fig1_db, context=context)

    def test_wrong_config_rejected(self, fig1_db):
        context = TranslationContext(fig1_db, TranslatorConfig(sigma=0.9))
        with pytest.raises(ValueError):
            SchemaFreeTranslator(fig1_db, context=context)

    def test_scoring_order_is_a_permutation(self, fig1_db):
        from repro.core.relation_tree import build_relation_trees
        from repro.core.triples import extract
        from repro.sqlkit import parse

        context = TranslationContext(fig1_db)
        tree = build_relation_trees(extract(parse("SELECT movie?.title?")))[0]
        ordered = context.scoring_order(tree)
        assert sorted(r.key for r in ordered) == sorted(
            r.key for r in fig1_db.catalog
        )
        assert ordered[0].name == "Movie"


class TestTranslateMany:
    def test_matches_per_query_translate_on_courses48(self, course_db):
        queries = [
            q.sf_sql or q.gold_sql
            for q in COURSE_QUERIES
            if q.bucket() in ("2-4", "5")
        ][:14]
        batch = SchemaFreeTranslator(course_db).translate_many(
            queries, top_k=3
        )
        for sql, batched in zip(queries, batch):
            fresh = SchemaFreeTranslator(course_db).translate(sql, top_k=3)
            assert [t.sql for t in batched] == [t.sql for t in fresh]
            assert [t.weight for t in batched] == [t.weight for t in fresh]

    def test_batch_stats_aggregate(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db)
        queries = [
            "SELECT actor?.name?",
            "SELECT movie?.title?",
            "SELECT actor?.name?",
        ]
        results = translator.translate_many(queries)
        assert len(results) == 3
        stats = translator.last_translation_stats
        assert stats.queries == 3
        assert stats.total_seconds > 0
        # the third query repeats the first: the batch saw memo hits
        assert stats.memo.get("tree_sim_hits", 0) > 0
