"""Translation result cache: canonicalization, bounds, invalidation.

The contract under test is docs/CACHING.md: fingerprint equality must
imply byte-identical translations, the LRU must respect both its entry
cap and byte budget, admission must reject anything degraded, and every
documented invalidation trigger must produce a guaranteed miss.
"""

import dataclasses
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, SchemaFreeTranslator
from repro.core.config import DEFAULT_CONFIG
from repro.core.context import TranslationContext
from repro.core.rescache import (
    ResultCache,
    canonical_fingerprint,
    canonical_text,
    schema_fingerprint,
)
from repro.sqlkit import parse, render
from repro.testing import RenameTable, evolve

from .conftest import make_fig1_catalog, populate_fig1

CACHED_CONFIG = dataclasses.replace(DEFAULT_CONFIG, result_cache_size=64)


def make_db() -> Database:
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return db


def cached_translator(db=None, config=CACHED_CONFIG):
    db = db or make_db()
    context = TranslationContext(db, config)
    return SchemaFreeTranslator(db, config, context=context), context


# ---------------------------------------------------------------------------
# canonicalization
# ---------------------------------------------------------------------------


class TestCanonicalization:
    def test_whitespace_and_keyword_case_fold(self):
        a = "SELECT title? WHERE director_name? = 'James Cameron'"
        b = "select    title?\n  where director_name?  =  'James Cameron' ;"
        assert canonical_fingerprint(a) == canonical_fingerprint(b)

    def test_guess_term_case_folds(self):
        a = "SELECT Title? WHERE Director_Name? = 'James Cameron'"
        b = "SELECT title? WHERE director_name? = 'James Cameron'"
        assert canonical_fingerprint(a) == canonical_fingerprint(b)

    def test_exact_identifier_case_is_preserved(self):
        # the composer copies EXACT names verbatim into the output, so
        # folding them would let a hit serve different bytes
        a = "SELECT name FROM Person"
        b = "SELECT name FROM person"
        assert canonical_fingerprint(a) != canonical_fingerprint(b)

    def test_literal_case_is_preserved(self):
        a = "SELECT title? WHERE director_name? = 'James Cameron'"
        b = "SELECT title? WHERE director_name? = 'james cameron'"
        assert canonical_fingerprint(a) != canonical_fingerprint(b)

    def test_variable_names_are_preserved(self):
        assert canonical_fingerprint(
            "SELECT ?x WHERE year? > 1995"
        ) != canonical_fingerprint("SELECT ?y WHERE year? > 1995")

    def test_distinct_queries_do_not_collide(self):
        queries = [
            "SELECT title?",
            "SELECT title? WHERE year? > 1995",
            "SELECT title? WHERE year? > 1996",
            "SELECT name? WHERE year? > 1995",
            "SELECT count(title?) WHERE year? > 1995",
        ]
        prints = {canonical_fingerprint(q) for q in queries}
        assert len(prints) == len(queries)

    def test_accepts_parsed_ast(self):
        q = "SELECT Title? WHERE Year? > 1995"
        assert canonical_fingerprint(q) == canonical_fingerprint(parse(q))

    def test_canonical_text_is_idempotent(self):
        q = "select  Title?  where  Year? > 1995"
        once = canonical_text(q)
        assert canonical_text(once) == once

    @given(
        name=st.text(alphabet=string.ascii_letters, min_size=1, max_size=10),
        value=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_formatting_rewrites_share_a_fingerprint(self, name, value):
        base = f"SELECT {name}? WHERE year? > {value}"
        shouty = f"SELECT   {name.upper()}?   WHERE  YEAR? > {value};"
        assert canonical_fingerprint(base) == canonical_fingerprint(shouty)

    @given(
        a=st.integers(min_value=0, max_value=10**4),
        b=st.integers(min_value=0, max_value=10**4),
    )
    @settings(max_examples=60, deadline=None)
    def test_distinct_literals_distinct_fingerprints(self, a, b):
        fa = canonical_fingerprint(f"SELECT title? WHERE year? > {a}")
        fb = canonical_fingerprint(f"SELECT title? WHERE year? > {b}")
        assert (fa == fb) == (a == b)

    def test_fingerprint_equality_implies_identical_translation(self):
        # the soundness rule itself, end to end: mangle guess-term case
        # and formatting, assert the translated bytes cannot change
        tr, _ = cached_translator(
            config=dataclasses.replace(DEFAULT_CONFIG, result_cache_size=0)
        )
        pairs = [
            (
                "SELECT title? WHERE director_name? = 'James Cameron'",
                "select TITLE?  where  Director_Name? = 'James Cameron' ;",
            ),
            (
                "SELECT count(actor?.name?) WHERE year? > 1995",
                "SELECT COUNT(Actor?.Name?) WHERE Year? > 1995",
            ),
        ]
        for original, rewritten in pairs:
            assert canonical_fingerprint(original) == canonical_fingerprint(
                rewritten
            )
            sql_a = render(tr.translate(original)[0].query)
            sql_b = render(tr.translate(rewritten)[0].query)
            assert sql_a == sql_b


class TestSchemaFingerprint:
    def test_stable_for_equal_catalogs(self):
        assert schema_fingerprint(make_fig1_catalog()) == schema_fingerprint(
            make_fig1_catalog()
        )

    def test_changes_on_evolution(self):
        db = make_db()
        evolved = evolve(db, [RenameTable("Movie", "Film")])
        assert schema_fingerprint(db.catalog) != schema_fingerprint(
            evolved.database.catalog
        )


# ---------------------------------------------------------------------------
# bounded LRU storage
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_lookup_miss_and_hit(self):
        cache = ResultCache(4, 1 << 20)
        assert cache.lookup(("k",)) is None
        cache.store(("k",), ("payload",), 10)
        assert cache.lookup(("k",)) == ("payload",)

    def test_entry_cap_evicts_oldest(self):
        cache = ResultCache(2, 1 << 20)
        cache.store(("a",), ("pa",), 1)
        cache.store(("b",), ("pb",), 1)
        evicted = cache.store(("c",), ("pc",), 1)
        assert evicted == 1
        assert cache.lookup(("a",)) is None
        assert cache.lookup(("b",)) is not None
        assert cache.lookup(("c",)) is not None

    def test_lookup_touches_lru_order(self):
        cache = ResultCache(2, 1 << 20)
        cache.store(("a",), ("pa",), 1)
        cache.store(("b",), ("pb",), 1)
        cache.lookup(("a",))  # a is now the most recent
        cache.store(("c",), ("pc",), 1)
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is not None

    def test_byte_budget_evicts(self):
        from repro.core.rescache import ENTRY_OVERHEAD

        per_entry = ENTRY_OVERHEAD + 100
        cache = ResultCache(100, 2 * per_entry)
        cache.store(("a",), ("pa",), 100)
        cache.store(("b",), ("pb",), 100)
        assert cache.store(("c",), ("pc",), 100) == 1
        assert len(cache) == 2
        assert cache.cost_bytes <= 2 * per_entry

    def test_oversize_entry_refused(self):
        cache = ResultCache(100, 512)
        cache.store(("a",), ("pa",), 10)
        assert cache.store(("big",), ("pb",), 10_000) == 0
        # the giant entry did not wipe the cache
        assert cache.lookup(("a",)) is not None
        assert cache.lookup(("big",)) is None

    def test_restore_same_key_replaces(self):
        cache = ResultCache(4, 1 << 20)
        cache.store(("k",), ("v1",), 10)
        cache.store(("k",), ("v2",), 10)
        assert len(cache) == 1
        assert cache.lookup(("k",)) == ("v2",)

    def test_clear_resets_bytes(self):
        cache = ResultCache(4, 1 << 20)
        cache.store(("k",), ("v",), 10)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.cost_bytes == 0

    def test_zero_entries_stores_nothing(self):
        cache = ResultCache(0, 1 << 20)
        assert cache.store(("k",), ("v",), 10) == 0
        assert cache.lookup(("k",)) is None


# ---------------------------------------------------------------------------
# translator integration
# ---------------------------------------------------------------------------


QUERY = "SELECT title? WHERE director_name? = 'James Cameron'"


class TestTranslatorCache:
    def test_repeat_hits_and_is_byte_identical(self):
        tr, ctx = cached_translator()
        first = tr.translate(QUERY)
        assert not first[0].cached
        second = tr.translate(QUERY)
        assert second[0].cached
        assert render(second[0].query) == render(first[0].query)
        assert second[0].weight == first[0].weight
        assert second[0].rung == first[0].rung
        assert ctx.stats.result_hits == 1

    def test_rewritten_query_hits(self):
        tr, _ = cached_translator()
        tr.translate(QUERY)
        variant = "select  TITLE?  where Director_Name? = 'James Cameron';"
        assert tr.translate(variant)[0].cached

    def test_disabled_by_default(self):
        db = make_db()
        tr = SchemaFreeTranslator(db)
        tr.translate(QUERY)
        assert not tr.translate(QUERY)[0].cached

    def test_pinned_start_rung_bypasses(self):
        tr, ctx = cached_translator()
        tr.translate(QUERY)
        pinned = tr.translate(QUERY, start_rung="greedy")
        assert not pinned[0].cached
        # and the pinned result was not admitted either
        assert not tr.translate(QUERY, start_rung="greedy")[0].cached

    def test_top_k_is_part_of_the_key(self):
        config = dataclasses.replace(CACHED_CONFIG, top_k=1)
        tr, _ = cached_translator(config=config)
        tr.translate(QUERY, top_k=1)
        assert not tr.translate(QUERY, top_k=2)[0].cached
        assert tr.translate(QUERY, top_k=2)[0].cached

    def test_hit_keeps_fresh_stats(self):
        tr, _ = cached_translator()
        tr.translate(QUERY)
        hit = tr.translate(QUERY)[0]
        assert hit.stats is not None
        assert hit.stats.memo.get("result_hits") == 1
        # a hit is served from parse + cache stages only
        assert "map" not in hit.stats.stages

    def test_shared_context_shares_the_cache(self):
        db = make_db()
        ctx = TranslationContext(db, CACHED_CONFIG)
        a = SchemaFreeTranslator(db, CACHED_CONFIG, context=ctx)
        b = SchemaFreeTranslator(db, CACHED_CONFIG, context=ctx)
        a.translate(QUERY)
        assert b.translate(QUERY)[0].cached


# ---------------------------------------------------------------------------
# invalidation triggers (each one => guaranteed miss)
# ---------------------------------------------------------------------------


class TestInvalidation:
    def test_data_version_bump_invalidates(self):
        db = make_db()
        tr, ctx = cached_translator(db)
        tr.translate(QUERY)
        db.insert("Movie", [13, "True Lies", 1994])
        result = tr.translate(QUERY)
        assert not result[0].cached
        assert ctx.stats.result_invalidations >= 1
        # and the re-translation was re-admitted under the new epoch
        assert tr.translate(QUERY)[0].cached

    def test_relation_alias_invalidates(self):
        tr, ctx = cached_translator()
        tr.translate(QUERY)
        ctx.add_relation_alias("Movie", "film")
        assert not tr.translate(QUERY)[0].cached
        assert ctx.stats.result_invalidations >= 1

    def test_attribute_alias_invalidates(self):
        tr, ctx = cached_translator()
        tr.translate(QUERY)
        ctx.add_attribute_alias("Movie", "title", "headline")
        assert not tr.translate(QUERY)[0].cached

    def test_evolution_yields_distinct_schema_fingerprint(self):
        # schema evolution builds a new Database/catalog, so its context
        # carries a different schema fingerprint: entries translated
        # against the old schema cannot be keys in the new world
        db = make_db()
        _, old_ctx = cached_translator(db)
        evolved = evolve(db, [RenameTable("Movie", "Film")])
        new_ctx = TranslationContext(evolved.database, CACHED_CONFIG)
        assert old_ctx.schema_fingerprint != new_ctx.schema_fingerprint

    def test_faulty_translator_never_caches(self):
        from repro.testing import FaultInjector

        db = make_db()
        ctx = TranslationContext(db, CACHED_CONFIG)
        clean = SchemaFreeTranslator(db, CACHED_CONFIG, context=ctx)
        clean.translate(QUERY)
        faulty = SchemaFreeTranslator(
            db, CACHED_CONFIG, context=ctx, faults=FaultInjector()
        )
        # a fault-injecting translator must neither read nor write the
        # shared cache: injected faults have to fire on every call
        assert not faulty.translate(QUERY)[0].cached


# ---------------------------------------------------------------------------
# serving-tier surfaces
# ---------------------------------------------------------------------------


class TestServiceCache:
    def test_inline_service_marks_cached(self):
        from repro.service import QueryService, ServiceConfig

        db = make_db()
        config = ServiceConfig(workers=1, translator=CACHED_CONFIG)
        with QueryService(db, config) as service:
            first = service.serve_inline(QUERY)
            second = service.serve_inline(QUERY)
        assert not first.cached
        assert second.cached
        assert second.sql == first.sql
        assert second.to_dict()["cached"] is True

    def test_service_metrics_count_cache(self):
        from repro.obs import MetricsRegistry
        from repro.service import QueryService, ServiceConfig

        registry = MetricsRegistry()
        db = make_db()
        config = ServiceConfig(workers=1, translator=CACHED_CONFIG)
        with QueryService(db, config, metrics=registry) as service:
            service.serve_inline(QUERY)
            service.serve_inline(QUERY)
        assert registry.counter("repro_cache_hits_total").value() == 1
        assert registry.counter("repro_cache_misses_total").value() == 1

    def test_cache_lookup_span_emitted(self):
        from repro.obs import RingBufferExporter, Tracer

        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        db = make_db()
        ctx = TranslationContext(db, CACHED_CONFIG)
        tr = SchemaFreeTranslator(db, CACHED_CONFIG, context=ctx, tracer=tracer)
        tr.translate(QUERY)
        tr.translate(QUERY)
        lookups = [s for s in ring.spans() if s.name == "cache.lookup"]
        assert len(lookups) == 2
        assert lookups[0].attributes["hit"] is False
        assert lookups[1].attributes["hit"] is True
