"""Unit tests for the concurrent query service.

Everything here is deterministic and sleep-free: clocks are either
manual counters or the fault injector's virtual clock, and backoff
"sleeps" advance that clock instead of waiting.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    Database,
    QueryService,
    ServiceOverloaded,
    SqlSyntaxError,
    TranslationError,
)
from repro.service import (
    CLOSED,
    HALF_OPEN,
    NO_RETRY,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    RetryPolicy,
    ServiceConfig,
    jitter_fraction,
)
from repro.testing.faults import FaultInjector, InjectedFault

from tests.conftest import make_fig1_catalog, populate_fig1

CAMERON = "SELECT name? WHERE director_name? = 'James Cameron'"
HANKS = "SELECT title? WHERE actor?.name? = 'Tom Hanks'"


def make_db() -> Database:
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return db


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.backoff(7, 1) == policy.backoff(7, 1)
        assert policy.backoff(7, 2) == policy.backoff(7, 2)

    def test_jitter_spreads_requests(self):
        fractions = {jitter_fraction(rid, 1) for rid in range(50)}
        assert len(fractions) > 25  # not all collapsing onto one value

    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(base=0.1, cap=0.4, jitter=0.0)
        assert policy.backoff(1, 1) == pytest.approx(0.1)
        assert policy.backoff(1, 2) == pytest.approx(0.2)
        assert policy.backoff(1, 3) == pytest.approx(0.4)
        assert policy.backoff(1, 10) == pytest.approx(0.4)  # capped

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(base=0.1, cap=10.0, jitter=0.1)
        for rid in range(20):
            raw = 0.1
            assert raw <= policy.backoff(rid, 1) <= raw * 1.1

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(InjectedFault("boom"))
        assert not policy.is_retryable(TranslationError("nope"))
        assert NO_RETRY.max_retries == 0


# ---------------------------------------------------------------------------
# circuit breaker state machine (manual clock, no sleeps)
# ---------------------------------------------------------------------------


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=5.0, rung="greedy"):
        clock = ManualClock()
        breaker = CircuitBreaker(
            BreakerConfig(
                failure_threshold=threshold,
                cooldown=cooldown,
                pinned_rung=rung,
            ),
            clock=clock,
        )
        return breaker, clock

    def test_starts_closed_full_strength(self):
        breaker, _ = self.make()
        assert breaker.state == CLOSED
        assert breaker.admit() == ("full", False)

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == CLOSED
        breaker.record(False)
        assert breaker.state == OPEN
        assert breaker.trip_count == 1
        assert breaker.admit() == ("greedy", False)

    def test_success_resets_consecutive_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record(False)
        breaker.record(True)
        breaker.record(False)
        assert breaker.state == CLOSED  # never 2 in a row

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record(False)
        assert breaker.state == OPEN
        # before cooldown: still pinned
        clock.advance(4.9)
        assert breaker.admit() == ("greedy", False)
        clock.advance(0.2)
        assert breaker.admit() == ("full", True)  # the probe
        assert breaker.state == HALF_OPEN
        # others stay pinned while the probe is in flight
        assert breaker.admit() == ("greedy", False)

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, cooldown=1.0)
        breaker.record(False)
        clock.advance(1.0)
        _, probe = breaker.admit()
        assert probe
        breaker.record(True, probe=True)
        assert breaker.state == CLOSED
        assert breaker.admit() == ("full", False)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record(False)
        clock.advance(5.0)
        _, probe = breaker.admit()
        assert probe
        breaker.record(False, probe=True)
        assert breaker.state == OPEN
        assert breaker.trip_count == 2
        # cooldown restarted at the re-open
        clock.advance(4.0)
        assert breaker.admit() == ("greedy", False)
        clock.advance(1.0)
        assert breaker.admit() == ("full", True)

    def test_abstain_releases_probe_without_closing(self):
        breaker, clock = self.make(threshold=1, cooldown=1.0)
        breaker.record(False)
        clock.advance(1.0)
        _, probe = breaker.admit()
        assert probe
        breaker.abstain(probe=True)
        assert breaker.state == HALF_OPEN
        # the next admit sends another probe
        assert breaker.admit() == ("full", True)

    def test_transition_trace_is_exact(self):
        breaker, clock = self.make(threshold=1, cooldown=1.0)
        breaker.record(False)
        clock.advance(1.0)
        breaker.admit()
        breaker.record(True, probe=True)
        states = [(a, b) for a, b, _ in breaker.transitions]
        assert states == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_open_failures_do_not_stack_trips(self):
        breaker, _ = self.make(threshold=1)
        breaker.record(False)
        breaker.record(False)
        breaker.record(False)
        assert breaker.trip_count == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(pinned_rung="bogus")
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)


# ---------------------------------------------------------------------------
# admission control and load shedding
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_sheds_beyond_bounded_queue(self):
        gate = threading.Event()
        config = ServiceConfig(
            workers=1,
            queue_limit=1,
            request_hook=lambda request: gate.wait(timeout=30),
        )
        with QueryService(make_db(), config) as service:
            first = service.submit(CAMERON)
            second = service.submit(HANKS)
            third = service.submit(CAMERON)  # capacity (1+1) exceeded
            shed = third.result(timeout=1)
            assert shed.shed
            assert shed.outcome == "shed"
            assert isinstance(shed.error, ServiceOverloaded)
            assert shed.error.diagnostic.stage == "admission"
            gate.set()
            assert first.result(timeout=30).ok
            assert second.result(timeout=30).ok
        assert service.stats.shed == 1
        assert service.stats.completed == 2
        assert ("shed", 3) in service.events

    def test_slot_released_after_completion(self):
        config = ServiceConfig(workers=1, queue_limit=0)
        with QueryService(make_db(), config) as service:
            for _ in range(3):  # sequential: the single slot is reused
                assert service.translate_one(CAMERON).ok
        assert service.stats.shed == 0

    def test_run_preserves_submission_order(self):
        with QueryService(make_db(), ServiceConfig(workers=4)) as service:
            queries = [CAMERON, HANKS, CAMERON, HANKS]
            responses = service.run(queries)
        assert [r.query for r in responses] == queries
        assert [r.request_id for r in responses] == [1, 2, 3, 4]

    def test_unknown_database_rejected(self):
        with QueryService(make_db()) as service:
            with pytest.raises(KeyError):
                service.submit(CAMERON, database="nope")

    def test_needs_at_least_one_database(self):
        with pytest.raises(ValueError):
            QueryService({})


# ---------------------------------------------------------------------------
# retries on transient faults (virtual clock, no sleeping)
# ---------------------------------------------------------------------------


class TestRetries:
    def test_transient_fault_retried_to_success(self):
        injector = FaultInjector()
        injector.inject_error("map", trigger=1)  # first map visit only
        config = ServiceConfig(workers=1, retry=RetryPolicy(max_retries=2))
        with QueryService(make_db(), config, faults=injector) as service:
            response = service.translate_one(CAMERON)
        assert response.ok
        assert response.retries == 1
        assert response.rung == "full"
        # the backoff was the deterministic schedule, on the virtual clock
        expected = config.retry.backoff(response.request_id, 1)
        assert ("retry", response.request_id, 1, expected) in service.events
        assert response.elapsed >= expected  # virtual time, not wall time
        assert service.stats.retries == 1

    def test_retries_exhausted_fails_typed(self):
        injector = FaultInjector()
        injector.inject_error("map", repeat=True)
        config = ServiceConfig(workers=1, retry=RetryPolicy(max_retries=2))
        with QueryService(make_db(), config, faults=injector) as service:
            response = service.translate_one(CAMERON)
        assert not response.ok
        assert response.retries == 2
        assert isinstance(response.error, InjectedFault)
        assert service.stats.failed == 1
        assert service.stats.retries == 2

    def test_non_transient_errors_fail_fast(self):
        config = ServiceConfig(workers=1, retry=RetryPolicy(max_retries=3))
        with QueryService(make_db(), config) as service:
            response = service.translate_one("SELECT name? WHERE")
        assert not response.ok
        assert response.retries == 0
        assert isinstance(response.error, SqlSyntaxError)

    def test_no_retry_policy(self):
        injector = FaultInjector()
        injector.inject_error("map", trigger=1)
        config = ServiceConfig(workers=1, retry=NO_RETRY)
        with QueryService(make_db(), config, faults=injector) as service:
            response = service.translate_one(CAMERON)
        assert not response.ok
        assert response.retries == 0


# ---------------------------------------------------------------------------
# deadlines mapped onto budgets
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_injected_delay_exhausts_deadline_and_degrades(self):
        injector = FaultInjector()
        # every map entry costs 10 virtual seconds: the 0.5s deadline is
        # gone before the full search starts
        injector.inject_delay("map", seconds=10.0, repeat=True)
        config = ServiceConfig(
            workers=1,
            deadline=0.5,
            retry=NO_RETRY,
            breaker=BreakerConfig(failure_threshold=1000),
        )
        with QueryService(make_db(), config, faults=injector) as service:
            response = service.translate_one(CAMERON)
        assert response.ok  # degraded, not failed
        assert response.rung != "full"
        steps = " ".join(response.translations[0].degradation)
        assert "abandoned" in steps or "deadline passed" in steps

    def test_deadline_none_never_degrades(self):
        with QueryService(make_db(), ServiceConfig(workers=1)) as service:
            response = service.translate_one(CAMERON)
        assert response.ok
        assert response.rung == "full"
        assert not response.degraded


# ---------------------------------------------------------------------------
# circuit breaker wired into the service
# ---------------------------------------------------------------------------


def pressure_injector(failures: int) -> FaultInjector:
    """An injector whose first *failures* requests lose their full-search
    budget (each fault fires once, on consecutive network visits)."""
    injector = FaultInjector()
    for visit in range(1, failures + 1):
        injector.inject_budget_exhaustion("network", trigger=visit)
    return injector


class TestBreakerIntegration:
    def make_service(self, failures=2, threshold=2, cooldown=60.0):
        injector = pressure_injector(failures)
        config = ServiceConfig(
            workers=1,
            retry=NO_RETRY,
            breaker=BreakerConfig(
                failure_threshold=threshold,
                cooldown=cooldown,
                pinned_rung="greedy",
            ),
        )
        return QueryService(make_db(), config, faults=injector), injector

    def test_budget_pressure_trips_and_pins(self):
        service, _ = self.make_service(failures=2, threshold=2)
        with service:
            # two budget-pressured requests: degraded to "reduced", and
            # each counts as a breaker failure
            for _ in range(2):
                response = service.translate_one(CAMERON)
                assert response.ok
                assert response.rung == "reduced"
            assert service.breaker().state == OPEN
            # new requests are pinned to the greedy rung
            pinned = service.translate_one(CAMERON)
            assert pinned.ok
            assert pinned.rung == "greedy"
            assert pinned.breaker_state == OPEN
            steps = " ".join(pinned.translations[0].degradation)
            assert "ladder pinned at 'greedy'" in steps
        assert service.breaker().trip_count == 1
        assert service.stats.rungs == {"reduced": 2, "greedy": 1}

    def test_half_open_probe_recovers(self):
        service, injector = self.make_service(
            failures=2, threshold=2, cooldown=30.0
        )
        with service:
            for _ in range(2):
                service.translate_one(CAMERON)
            assert service.breaker().state == OPEN
            # cooldown not elapsed: still pinned
            assert service.translate_one(CAMERON).rung == "greedy"
            injector.advance(30.0)
            # the faults are exhausted, so the probe runs clean at full
            probe = service.translate_one(CAMERON)
            assert probe.probe
            assert probe.ok
            assert probe.rung == "full"
            assert service.breaker().state == CLOSED
            # and service is back to full strength
            assert service.translate_one(CAMERON).rung == "full"
        states = [(a, b) for a, b, _ in service.breaker().transitions]
        assert states == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        assert service.stats.probes == 1

    def test_failed_probe_reopens(self):
        # 3 pressure faults: two trip the breaker, the third hits the probe
        service, injector = self.make_service(
            failures=3, threshold=2, cooldown=30.0
        )
        with service:
            for _ in range(2):
                service.translate_one(CAMERON)
            assert service.breaker().state == OPEN
            injector.advance(30.0)
            probe = service.translate_one(CAMERON)
            assert probe.probe
            assert probe.rung == "reduced"  # still under pressure
            assert service.breaker().state == OPEN
            assert service.breaker().trip_count == 2

    def test_per_database_breakers_are_independent(self):
        injector = pressure_injector(2)
        config = ServiceConfig(
            workers=1,
            retry=NO_RETRY,
            breaker=BreakerConfig(failure_threshold=2, cooldown=60.0),
        )
        databases = {"a": make_db(), "b": make_db()}
        with QueryService(databases, config, faults=injector) as service:
            for _ in range(2):
                service.translate_one(CAMERON, database="a")
            assert service.breaker("a").state == OPEN
            assert service.breaker("b").state == CLOSED
            # b still serves at full strength (faults exhausted by a)
            response = service.translate_one(CAMERON, database="b")
            assert response.rung == "full"
            assert service.breaker("b").state == CLOSED

    def test_user_errors_do_not_trip_breaker(self):
        config = ServiceConfig(
            workers=1, breaker=BreakerConfig(failure_threshold=1)
        )
        with QueryService(make_db(), config) as service:
            for _ in range(3):
                response = service.translate_one("SELECT name? WHERE")
                assert not response.ok
            assert service.breaker().state == CLOSED


# ---------------------------------------------------------------------------
# response / snapshot surface
# ---------------------------------------------------------------------------


class TestResponseSurface:
    def test_response_to_dict_round_trips_json(self):
        import json

        with QueryService(make_db(), ServiceConfig(workers=1)) as service:
            response = service.translate_one(CAMERON)
        data = json.loads(json.dumps(response.to_dict()))
        assert data["outcome"] == "ok"
        assert data["rung"] == "full"
        assert data["sql"].startswith("SELECT")

    def test_snapshot_has_stats_breakers_memo(self):
        with QueryService(make_db(), ServiceConfig(workers=2)) as service:
            service.run([CAMERON, HANKS])
            snapshot = service.snapshot()
        assert snapshot["stats"]["completed"] == 2
        assert snapshot["breakers"]["default"]["state"] == CLOSED
        assert "tree_sim_misses" in snapshot["memo"]["default"]

    def test_close_is_idempotent(self):
        service = QueryService(make_db(), ServiceConfig(workers=1))
        service.close()
        service.close()


# ---------------------------------------------------------------------------
# close semantics and caller rung pinning (served-tier contract)
# ---------------------------------------------------------------------------


class TestCloseAndPinning:
    def test_submit_after_close_refuses_typed(self):
        from repro import ServiceClosed

        service = QueryService(make_db(), ServiceConfig(workers=1))
        service.close()
        response = service.submit(CAMERON).result()
        assert not response.ok
        assert isinstance(response.error, ServiceClosed)
        assert response.outcome == "failed"
        assert service.closed

    def test_concurrent_close_and_submit_never_raises(self):
        """Submissions racing close() always get a resolved future —
        either a served response or a typed ServiceClosed, never a raw
        executor RuntimeError."""
        from repro import ServiceClosed

        service = QueryService(make_db(), ServiceConfig(workers=2))
        futures = []
        errors = []
        start = threading.Barrier(5)

        def submitter():
            start.wait()
            for _ in range(10):
                try:
                    futures.append(service.submit(CAMERON))
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)

        def closer():
            start.wait()
            service.close()

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        threads.append(threading.Thread(target=closer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for future in futures:
            response = future.result(timeout=30)
            assert response.ok or isinstance(
                response.error, ServiceClosed
            ), response.error

    def test_close_is_safe_from_many_threads(self):
        service = QueryService(make_db(), ServiceConfig(workers=1))
        threads = [
            threading.Thread(target=service.close) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert service.closed

    def test_caller_pinned_start_rung_is_honoured(self):
        with QueryService(make_db(), ServiceConfig(workers=1)) as service:
            response = service.submit(CAMERON, start_rung="greedy").result()
        assert response.ok
        assert response.rung == "greedy"

    def test_caller_pin_never_weakens_breaker_pin(self):
        """A caller pin earlier on the ladder than the breaker's own pin
        must not un-degrade a tripped database."""
        injector = pressure_injector(2)
        config = ServiceConfig(
            workers=1,
            retry=NO_RETRY,
            breaker=BreakerConfig(
                failure_threshold=2, cooldown=60.0, pinned_rung="greedy"
            ),
        )
        with QueryService(make_db(), config, faults=injector) as service:
            for _ in range(2):
                service.submit(CAMERON).result()
            assert service.breaker().state == OPEN
            response = service.submit(CAMERON, start_rung="reduced").result()
        # breaker pin (greedy) is later on the ladder than the caller's
        # "reduced" ask, so the breaker wins
        assert response.rung == "greedy"

    def test_unknown_start_rung_raises_value_error(self):
        with QueryService(make_db(), ServiceConfig(workers=1)) as service:
            with pytest.raises(ValueError):
                service.submit(CAMERON, start_rung="bogus")


class TestServeInline:
    """serve_inline: submit().result() semantics without the pool hop."""

    def test_matches_submit_byte_for_byte(self):
        with QueryService(make_db(), ServiceConfig(workers=1)) as service:
            pooled = service.submit(CAMERON).result()
            inline = service.serve_inline(CAMERON)
        assert inline.ok and pooled.ok
        assert inline.sql == pooled.sql
        assert inline.rung == pooled.rung
        assert inline.outcome == pooled.outcome

    def test_runs_on_the_calling_thread(self):
        seen = []
        config = ServiceConfig(
            workers=1, request_hook=lambda req: seen.append(
                threading.current_thread()
            )
        )
        with QueryService(make_db(), config) as service:
            service.serve_inline(CAMERON)
        assert seen == [threading.main_thread()]

    def test_honours_caller_pin(self):
        with QueryService(make_db(), ServiceConfig(workers=1)) as service:
            response = service.serve_inline(CAMERON, start_rung="greedy")
        assert response.ok
        assert response.rung == "greedy"

    def test_refuses_typed_after_close(self):
        from repro import ServiceClosed

        service = QueryService(make_db(), ServiceConfig(workers=1))
        service.close()
        response = service.serve_inline(CAMERON)
        assert not response.ok
        assert isinstance(response.error, ServiceClosed)

    def test_releases_slot(self):
        with QueryService(
            make_db(), ServiceConfig(workers=1, queue_limit=0)
        ) as service:
            for _ in range(3):  # would shed on the 2nd if slots leaked
                assert service.serve_inline(CAMERON).ok
