"""Deterministic concurrency suite.

Two layers of coverage:

* hammer tests for every shared structure hardened in this PR —
  :class:`~repro.core.resilience.Budget` (and its slice families),
  :class:`~repro.testing.faults.FaultInjector`,
  :class:`~repro.engine.database.Database` writes — asserting *exact*
  counter totals, not just "no crash";
* the acceptance stress test: 8 service workers over 200 mixed queries
  with injected transient errors and delays, checked byte-for-byte
  against a serial baseline.

Determinism discipline: totals, retry/shed counts, fired-fault counts
and final SQL are all scheduler-independent; only *which* thread draws
an injected fault varies, and the assertions never depend on that.
"""

from __future__ import annotations

import threading

import pytest

from repro import Budget, BudgetExceeded, Database, QueryService, SchemaFreeTranslator
from repro.service import BreakerConfig, RetryPolicy, ServiceConfig
from repro.testing.faults import FaultInjector

from tests.conftest import make_fig1_catalog, populate_fig1

THREADS = 8


def make_db() -> Database:
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return db


def in_threads(worker, count: int = THREADS) -> list:
    """Run ``worker(index)`` in *count* threads; re-raise any failure."""
    errors: list[BaseException] = []
    results: list = [None] * count
    barrier = threading.Barrier(count)

    def runner(index: int) -> None:
        try:
            barrier.wait(timeout=30)
            results[index] = worker(index)
        except BaseException as exc:  # noqa: BLE001 - re-raises below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    if errors:
        raise errors[0]
    return results


# ---------------------------------------------------------------------------
# Budget
# ---------------------------------------------------------------------------


class TestBudgetAtomicity:
    def test_uncapped_charges_sum_exactly(self):
        budget = Budget()
        per_thread = 1000

        def worker(_index):
            for _ in range(per_thread):
                budget.charge_candidates(1)
            for _ in range(per_thread // 2):
                budget.charge_expansions(2)

        in_threads(worker)
        assert budget.candidates == THREADS * per_thread
        assert budget.expansions == THREADS * per_thread

    def test_slice_noting_propagates_exactly(self):
        root = Budget()
        middle = root.slice()
        children = [middle.slice() for _ in range(THREADS)]
        per_thread = 500

        def worker(index):
            child = children[index]
            for _ in range(per_thread):
                child.charge_candidates(1)

        in_threads(worker)
        for child in children:
            assert child.candidates == per_thread
        # every charge was noted once on every ancestor
        assert middle.candidates == THREADS * per_thread
        assert root.candidates == THREADS * per_thread

    def test_cap_is_enforced_and_sticky_under_contention(self):
        budget = Budget(max_candidates=100)

        def worker(_index):
            tripped = 0
            for _ in range(200):
                try:
                    budget.charge_candidates(1)
                except BudgetExceeded:
                    tripped += 1
                    break
            return tripped

        results = in_threads(worker)
        # every thread observed the exhaustion...
        assert results == [1] * THREADS
        assert budget.is_exhausted
        # ...each thread overshoots by at most its own in-flight charge
        assert 100 < budget.candidates <= 100 + THREADS
        # and exhaustion is sticky for any later caller
        with pytest.raises(BudgetExceeded):
            budget.check("network")


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------


class TestFaultInjectorThreadSafety:
    def test_visit_counts_are_exact(self):
        injector = FaultInjector()
        per_thread = 100

        def worker(_index):
            for _ in range(per_thread):
                injector.fire("map")

        in_threads(worker)
        assert injector.visits["map"] == THREADS * per_thread

    def test_once_fault_fires_exactly_once_across_threads(self):
        injector = FaultInjector()
        fault = injector.inject_error("map", trigger=400)
        hits = []
        per_thread = 100

        def worker(_index):
            seen = 0
            for _ in range(per_thread):
                try:
                    injector.fire("map")
                except Exception:  # noqa: BLE001 - the injected fault; re-raises nothing
                    seen += 1
            hits.append(seen)

        in_threads(worker)
        assert injector.visits["map"] == THREADS * per_thread
        assert fault.fired == 1
        assert sum(hits) == 1  # exactly one thread drew it
        assert injector.log.count(("map", "error")) == 1

    def test_delay_offsets_accumulate_exactly(self):
        injector = FaultInjector()
        base = injector.clock()

        def worker(_index):
            for _ in range(100):
                injector.advance(0.01)

        in_threads(worker)
        assert injector.clock() - base >= THREADS * 100 * 0.01


# ---------------------------------------------------------------------------
# Database writes
# ---------------------------------------------------------------------------


class TestDatabaseWriteSafety:
    def test_concurrent_inserts_count_exactly(self):
        db = Database(make_fig1_catalog())
        before = db.data_version
        per_thread = 50

        def worker(index):
            for i in range(per_thread):
                pk = 1000 + index * per_thread + i
                db.insert("Person", [pk, f"person-{pk}", "other"])

        in_threads(worker)
        assert db.count("Person") == THREADS * per_thread
        assert db.data_version - before == THREADS * per_thread
        # primary keys survived the race intact
        pks = db.column_values("Person", "person_id")
        assert len(set(pks)) == len(pks)


# ---------------------------------------------------------------------------
# acceptance stress test: 8 workers, 200 mixed queries, injected faults
# ---------------------------------------------------------------------------

#: 25 distinct queries: joins, filters, projections, aggregates and a few
#: that fail deterministically (syntax errors).  Each is submitted
#: 8 times below.
STRESS_QUERIES = [
    "SELECT name? WHERE director_name? = 'James Cameron'",
    "SELECT title? WHERE actor?.name? = 'Tom Hanks'",
    "SELECT title? WHERE director?.name? = 'Steven Spielberg'",
    "SELECT name? WHERE actor?.movie?.title? = 'Titanic'",
    "SELECT title? WHERE release_year? = 1997",
    "SELECT title? WHERE release_year? > 2000",
    "SELECT name? WHERE gender? = 'female'",
    "SELECT company?.name? WHERE movie?.title? = 'Avatar'",
    "SELECT title?, release_year?",
    "SELECT name?",
    "SELECT person?.name?, movie?.title?",
    "SELECT title? WHERE producer?.name? = 'Paramount'",
    "SELECT name? WHERE movie?.release_year? = 2009",
    "SELECT title? WHERE actor?.gender? = 'female'",
    "SELECT director?.name? WHERE title? = 'Avatar'",
    "SELECT actor?.name? WHERE title? = 'Titanic'",
    "SELECT COUNT(title?)",
    "SELECT release_year? WHERE title? = 'The Terminal'",
    "SELECT gender? WHERE name? = 'Kate Winslet'",
    "SELECT company_name? WHERE title? = 'Titanic'",
    "SELECT title? WHERE director_name? = 'James Cameron' AND release_year? = 2009",
    "SELECT name? WHERE director?.movie?.title? = 'Avatar'",
    # deterministic failures: syntax errors never reach the pipeline
    "SELECT name? WHERE",
    "SELECT FROM WHERE",
    "SELECT title? WHERE release_year? =",
]
REPEATS = 8


class TestServiceStress:
    def serial_baseline(self, db: Database) -> dict[str, tuple]:
        """(kind, payload) per query from one translator, no service."""
        translator = SchemaFreeTranslator(db)
        baseline: dict[str, tuple] = {}
        for query in STRESS_QUERIES:
            try:
                translations = translator.translate(query, top_k=1)
            except Exception as exc:  # noqa: BLE001 - recorded, compared, re-raises in service run
                baseline[query] = ("error", type(exc).__name__)
            else:
                baseline[query] = (
                    "ok",
                    translations[0].sql,
                    translations[0].rung,
                )
        return baseline

    def test_eight_workers_match_serial_baseline(self):
        db = make_db()
        baseline = self.serial_baseline(make_db())

        injector = FaultInjector()
        # five one-shot transient errors spread across the run; each
        # costs its (scheduler-chosen) request exactly one retry
        fault_count = 5
        for visit in (10, 40, 70, 100, 130):
            injector.inject_error("map", trigger=visit)
        # a few virtual-clock delays: harmless without deadlines, but
        # they exercise the offset bookkeeping under load
        for visit in (20, 60, 110):
            injector.inject_delay("map", seconds=0.01, trigger=visit)

        config = ServiceConfig(
            workers=THREADS,
            queue_limit=256,
            retry=RetryPolicy(max_retries=2),
            breaker=BreakerConfig(failure_threshold=3),
        )
        queries = STRESS_QUERIES * REPEATS
        with QueryService(db, config, faults=injector) as service:
            responses = service.run(queries)

        # --- no shedding, no unhandled exceptions, order preserved ----
        assert len(responses) == len(queries)
        assert [r.query for r in responses] == queries
        assert service.stats.shed == 0

        # --- byte-identical to the serial baseline --------------------
        failing = {q for q, b in baseline.items() if b[0] == "error"}
        for response in responses:
            expected = baseline[response.query]
            if expected[0] == "ok":
                assert response.ok, (response.query, response.error)
                assert response.sql == expected[1]
                assert response.rung == expected[2] == "full"
                assert not response.degraded
            else:
                assert not response.ok
                assert type(response.error).__name__ == expected[1]

        # --- deterministic aggregate counters -------------------------
        ok_count = len(queries) - len(failing) * REPEATS
        assert service.stats.completed == ok_count
        assert service.stats.failed == len(failing) * REPEATS
        assert service.stats.rungs == {"full": ok_count}

        # every injected fault fired exactly once and cost one retry
        assert injector.log.count(("map", "error")) == fault_count
        assert service.stats.retries == fault_count
        retry_events = [e for e in service.events if e[0] == "retry"]
        assert len(retry_events) == fault_count
        retried = {e[1] for e in retry_events}
        by_id = {r.request_id: r for r in responses}
        assert sum(r.retries for r in responses) == fault_count
        for request_id in retried:
            assert by_id[request_id].retries == 1
            assert by_id[request_id].ok  # retried to success

        # breaker never tripped, no probes ran
        assert service.breaker().trip_count == 0
        assert service.stats.probes == 0

        # the shared context was never invalidated (no writes), and the
        # memo actually carried load across threads
        memo = service.context().stats
        assert memo.invalidations == 0
        assert memo.tree_sim_hits > 0

    def test_concurrent_submitters_one_service(self):
        """Many client threads sharing one service: ids stay unique and
        every future resolves."""
        db = make_db()
        config = ServiceConfig(workers=4, queue_limit=256)
        pool = [STRESS_QUERIES[i] for i in (0, 1, 2, 4, 6)]  # all valid
        with QueryService(db, config) as service:

            def worker(_index):
                futures = [
                    service.submit(pool[i % len(pool)]) for i in range(20)
                ]
                return [f.result(timeout=60) for f in futures]

            all_responses = [r for rs in in_threads(worker) for r in rs]
        ids = [r.request_id for r in all_responses]
        assert len(set(ids)) == len(ids) == THREADS * 20
        assert all(r.ok for r in all_responses)
        assert service.stats.completed == THREADS * 20
