"""Engine edge cases: nulls, joins, ordering, and failure paths."""

import pytest

from repro import Catalog, Database, DataType
from repro.engine import ExecutionError, NameResolutionError


@pytest.fixture()
def nullable_db():
    catalog = Catalog("nulls")
    catalog.create_relation(
        "t",
        [
            ("id", DataType.INTEGER),
            ("v", DataType.INTEGER),
            ("s", DataType.TEXT),
        ],
        primary_key=["id"],
    )
    catalog.create_relation(
        "u", [("id", DataType.INTEGER), ("t_id", DataType.INTEGER)]
    )
    db = Database(catalog)
    db.insert_many(
        "t",
        [
            [1, 10, "a"],
            [2, None, "b"],
            [3, 30, None],
            [4, None, None],
        ],
    )
    db.insert_many("u", [[1, 1], [2, 1], [3, None], [4, 99]])
    return db


class TestNullSemantics:
    def test_where_drops_unknown(self, nullable_db):
        result = nullable_db.execute("SELECT id FROM t WHERE v > 5")
        assert {r[0] for r in result} == {1, 3}

    def test_not_of_unknown_still_drops(self, nullable_db):
        result = nullable_db.execute("SELECT id FROM t WHERE NOT v > 5")
        assert result.rows == []

    def test_is_null_finds_them(self, nullable_db):
        result = nullable_db.execute("SELECT id FROM t WHERE v IS NULL ORDER BY id")
        assert [r[0] for r in result] == [2, 4]

    def test_null_never_joins(self, nullable_db):
        result = nullable_db.execute(
            "SELECT count(*) FROM t, u WHERE t.id = u.t_id"
        )
        assert result.scalar() == 2  # u rows with t_id NULL / 99 don't match

    def test_aggregate_ignores_nulls(self, nullable_db):
        row = nullable_db.execute("SELECT count(v), count(*), avg(v) FROM t").rows[0]
        assert row == (2, 4, 20.0)

    def test_group_by_null_key_groups_together(self, nullable_db):
        result = nullable_db.execute(
            "SELECT v, count(*) FROM t GROUP BY v"
        )
        groups = dict(result.rows)
        assert groups[None] == 2

    def test_order_by_nulls_last_ascending(self, nullable_db):
        result = nullable_db.execute("SELECT v FROM t ORDER BY v")
        values = [r[0] for r in result]
        assert values == [10, 30, None, None]

    def test_coalesce_in_projection(self, nullable_db):
        result = nullable_db.execute(
            "SELECT coalesce(s, 'missing') FROM t ORDER BY id"
        )
        assert [r[0] for r in result] == ["a", "b", "missing", "missing"]


class TestJoinShapes:
    def test_left_join_keeps_all_left_rows(self, nullable_db):
        result = nullable_db.execute(
            "SELECT t.id, u.id FROM t LEFT JOIN u ON t.id = u.t_id "
            "ORDER BY t.id"
        )
        left_ids = [r[0] for r in result]
        assert set(left_ids) == {1, 2, 3, 4}
        # t.id=1 matched twice, others padded with NULL
        assert left_ids.count(1) == 2

    def test_right_join_mirrors_left(self, nullable_db):
        result = nullable_db.execute(
            "SELECT t.id, u.id FROM t RIGHT JOIN u ON t.id = u.t_id"
        )
        right_ids = sorted(r[1] for r in result)
        assert right_ids == [1, 2, 3, 4]

    def test_cross_join_explicit(self, nullable_db):
        result = nullable_db.execute("SELECT count(*) FROM t CROSS JOIN u")
        assert result.scalar() == 16

    def test_join_on_expression(self, nullable_db):
        result = nullable_db.execute(
            "SELECT count(*) FROM t JOIN u ON t.id + 0 = u.t_id"
        )
        assert result.scalar() == 2

    def test_three_way_mixed_syntax(self, nullable_db):
        result = nullable_db.execute(
            "SELECT count(*) FROM t, u WHERE t.id = u.t_id AND t.v IS NOT NULL"
        )
        assert result.scalar() == 2


class TestErrorPaths:
    def test_unknown_table(self, nullable_db):
        with pytest.raises(Exception):
            nullable_db.execute("SELECT x FROM ghost")

    def test_unknown_column(self, nullable_db):
        with pytest.raises(NameResolutionError):
            nullable_db.execute("SELECT ghost FROM t")

    def test_ambiguous_column(self, nullable_db):
        with pytest.raises(NameResolutionError):
            nullable_db.execute("SELECT id FROM t, u WHERE t.id = u.t_id")

    def test_aggregate_in_where_rejected(self, nullable_db):
        with pytest.raises(ExecutionError):
            nullable_db.execute("SELECT id FROM t WHERE count(*) > 1")

    def test_having_without_group_or_aggregate(self, nullable_db):
        with pytest.raises(ExecutionError):
            nullable_db.execute("SELECT id FROM t HAVING id > 1")

    def test_order_by_position_out_of_range(self, nullable_db):
        with pytest.raises(ExecutionError):
            nullable_db.execute("SELECT id FROM t ORDER BY 9")

    def test_star_with_unknown_qualifier(self, nullable_db):
        with pytest.raises(NameResolutionError):
            nullable_db.execute("SELECT ghost.* FROM t")


class TestProjectionDetails:
    def test_expression_column_names(self, nullable_db):
        result = nullable_db.execute("SELECT v + 1 AS bumped, v FROM t LIMIT 1")
        assert result.columns == ["bumped", "v"]

    def test_case_in_projection(self, nullable_db):
        result = nullable_db.execute(
            "SELECT CASE WHEN v IS NULL THEN 'none' ELSE 'some' END FROM t "
            "ORDER BY id"
        )
        assert [r[0] for r in result] == ["some", "none", "some", "none"]

    def test_scalar_subquery_in_projection(self, nullable_db):
        result = nullable_db.execute(
            "SELECT id, (SELECT max(v) FROM t) FROM t WHERE id = 1"
        )
        assert result.rows == [(1, 30)]

    def test_distinct_on_expressions(self, nullable_db):
        result = nullable_db.execute("SELECT DISTINCT v IS NULL FROM t")
        assert len(result) == 2

    def test_group_by_expression(self, nullable_db):
        result = nullable_db.execute(
            "SELECT v IS NULL, count(*) FROM t GROUP BY v IS NULL"
        )
        assert dict(result.rows) == {True: 2, False: 2}
