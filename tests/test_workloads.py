"""Tests for the workloads and SF-SQL derivation rules (§7.2, §7.3)."""

import pytest

from repro.sqlkit import ast, parse
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
    derive_course_sfsql,
    derive_textbook_sfsql,
)
from repro.workloads.efficiency import EFFICIENCY_QUERIES


class TestTextbookDerivation:
    def test_from_clause_removed(self):
        sf = derive_textbook_sfsql("SELECT title FROM movie WHERE year > 2000")
        assert "FROM" not in sf.upper()

    def test_columns_merged_with_relation_names(self):
        sf = derive_textbook_sfsql("SELECT title FROM movie WHERE year > 2000")
        assert "movie?.title?" in sf
        assert "movie?.year?" in sf

    def test_join_paths_deleted(self):
        sf = derive_textbook_sfsql(
            "SELECT p.name FROM person p, director d "
            "WHERE p.person_id = d.person_id AND d.movie_id = 10"
        )
        assert "person_id = " not in sf
        assert "movie_id? = 10" in sf

    def test_self_join_keeps_occurrences_distinct_via_vars(self):
        sf = derive_textbook_sfsql(
            "SELECT a.name FROM person a, person b "
            "WHERE a.person_id = b.person_id AND b.name = 'X'"
        )
        assert "?a.name?" in sf
        assert "?b.name?" in sf

    def test_subqueries_derived_recursively(self):
        sf = derive_textbook_sfsql(
            "SELECT title FROM movie WHERE movie_id IN "
            "(SELECT movie_id FROM director)"
        )
        assert "director?.movie_id?" in sf

    def test_value_conditions_survive(self):
        sf = derive_textbook_sfsql(
            "SELECT title FROM movie WHERE release_year BETWEEN 1995 AND 2005"
        )
        assert "BETWEEN 1995 AND 2005" in sf


class TestCourseDerivation:
    GOLD = (
        "SELECT s.name FROM student s, enrollment e, section sec, course c "
        "WHERE s.student_id = e.student_id "
        "AND e.section_id = sec.section_id "
        "AND sec.course_id = c.course_id AND c.title = 'Databases'"
    )

    def test_only_end_relations_kept(self):
        sf = derive_course_sfsql(self.GOLD)
        assert "student AS s" in sf
        assert "course AS c" in sf
        assert "enrollment" not in sf
        assert "section" not in sf.replace("section_id", "")

    def test_join_conditions_removed(self):
        sf = derive_course_sfsql(self.GOLD)
        assert "student_id = " not in sf

    def test_value_conditions_kept_exact(self):
        sf = derive_course_sfsql(self.GOLD)
        assert "c.title = 'Databases'" in sf

    def test_condition_on_bridge_makes_it_an_end_relation(self):
        sf = derive_course_sfsql(
            self.GOLD.replace(
                "AND c.title = 'Databases'",
                "AND c.title = 'Databases' AND e.status = 'enrolled'",
            )
        )
        assert "enrollment AS e" in sf


class TestWorkloadShapes:
    def test_textbook_has_17_queries(self):
        assert len(TEXTBOOK_QUERIES) == 17

    def test_sophisticated_has_6_queries_5_users(self):
        assert len(SOPHISTICATED_QUERIES) == 6
        assert all(len(q.user_variants) == 5 for q in SOPHISTICATED_QUERIES)

    def test_course_buckets_match_figure15(self):
        buckets = {}
        for query in COURSE_QUERIES:
            buckets[query.bucket()] = buckets.get(query.bucket(), 0) + 1
        assert buckets == {"2-4": 11, "5": 26, "6-10": 11}

    def test_sophisticated_queries_join_5_plus_relations(self):
        assert all(q.relation_count >= 5 for q in SOPHISTICATED_QUERIES)

    def test_efficiency_sweep_covers_2_to_10(self):
        sizes = sorted(q.relation_count for q in EFFICIENCY_QUERIES)
        assert sizes == list(range(2, 11))

    def test_all_gold_queries_parse(self):
        for query in (
            TEXTBOOK_QUERIES
            + SOPHISTICATED_QUERIES
            + COURSE_QUERIES
            + EFFICIENCY_QUERIES
        ):
            parse(query.gold_sql)
            if query.sf_sql:
                parse(query.sf_sql)
            for variant in query.user_variants:
                parse(variant)

    def test_qids_unique(self):
        qids = [
            q.qid
            for q in TEXTBOOK_QUERIES + SOPHISTICATED_QUERIES + COURSE_QUERIES
        ]
        assert len(qids) == len(set(qids))


class TestGoldExecutability:
    """Every gold query runs and has a non-empty answer on its database."""

    def test_textbook_golds_nonempty(self, fig1_db):
        from repro.datasets import make_movie_database

        db = make_movie_database()
        for query in TEXTBOOK_QUERIES:
            assert len(db.execute(query.gold_sql)) > 0, query.qid

    def test_course_golds_nonempty(self):
        from repro.datasets import make_course_database

        db = make_course_database()
        for query in COURSE_QUERIES:
            assert len(db.execute(query.gold_sql)) > 0, query.qid

    def test_sophisticated_golds_nonempty(self):
        from repro.datasets import make_movie_database

        db = make_movie_database()
        for query in SOPHISTICATED_QUERIES:
            assert len(db.execute(query.gold_sql)) > 0, query.qid
