"""Round-trip tests for the SQL renderer."""

import pytest

from repro.sqlkit import ast, parse, parse_expression, render


def roundtrip(sql: str) -> str:
    """Render, reparse, re-render: must be a fixed point."""
    once = render(parse(sql))
    twice = render(parse(once))
    assert once == twice, f"render not stable: {once!r} vs {twice!r}"
    return once


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t",
            "SELECT DISTINCT a, b AS x FROM t AS u WHERE a = 1",
            "SELECT count(*) FROM t GROUP BY g HAVING count(*) > 2",
            "SELECT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1",
            "SELECT a FROM t WHERE x BETWEEN 1 AND 2 AND y NOT IN (1, 2)",
            "SELECT a FROM t WHERE name LIKE '%x%' OR name IS NULL",
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "SELECT a FROM t WHERE x > ANY (SELECT y FROM u)",
            "SELECT a FROM t UNION ALL SELECT b FROM u",
            "SELECT a FROM t JOIN u ON t.id = u.id",
            "SELECT a FROM t LEFT JOIN u ON t.id = u.id",
            "SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END FROM t",
        ],
    )
    def test_fixed_point(self, sql):
        roundtrip(sql)

    def test_schema_free_markers_survive(self):
        sql = "SELECT count(actor?.name?) WHERE ?x.a? = 'v' AND year? > 1995"
        text = roundtrip(sql)
        assert "actor?.name?" in text
        assert "?x.a?" in text
        assert "year? > 1995" in text

    def test_parentheses_preserved_semantically(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        text = render(expr)
        reparsed = parse_expression(text)
        assert reparsed.op == "and"

    def test_string_escaping(self):
        expr = parse_expression("name = 'O''Brien'")
        text = render(expr)
        assert parse_expression(text).right.value == "O'Brien"

    def test_null_and_booleans(self):
        assert render(ast.Literal(None)) == "NULL"
        assert render(ast.Literal(True)) == "TRUE"

    def test_negative_numbers(self):
        assert render(parse_expression("-5 + 3")) == "-5 + 3"

    def test_nested_arithmetic_parens(self):
        expr = parse_expression("(1 + 2) * 3")
        reparsed = parse_expression(render(expr))
        assert reparsed.op == "*"

    def test_subtraction_right_assoc_parens(self):
        # 1 - (2 - 3) must keep its parentheses
        expr = parse_expression("1 - (2 - 3)")
        text = render(expr)
        assert parse_expression(text) == expr
