"""Round-trip tests for the SQL renderer."""

import pytest

from repro.sqlkit import ast, parse, parse_expression, render


def roundtrip(sql: str) -> str:
    """Render, reparse, re-render: must be a fixed point."""
    once = render(parse(sql))
    twice = render(parse(once))
    assert once == twice, f"render not stable: {once!r} vs {twice!r}"
    return once


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t",
            "SELECT DISTINCT a, b AS x FROM t AS u WHERE a = 1",
            "SELECT count(*) FROM t GROUP BY g HAVING count(*) > 2",
            "SELECT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1",
            "SELECT a FROM t WHERE x BETWEEN 1 AND 2 AND y NOT IN (1, 2)",
            "SELECT a FROM t WHERE name LIKE '%x%' OR name IS NULL",
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "SELECT a FROM t WHERE x > ANY (SELECT y FROM u)",
            "SELECT a FROM t UNION ALL SELECT b FROM u",
            "SELECT a FROM t JOIN u ON t.id = u.id",
            "SELECT a FROM t LEFT JOIN u ON t.id = u.id",
            "SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END FROM t",
        ],
    )
    def test_fixed_point(self, sql):
        roundtrip(sql)

    def test_schema_free_markers_survive(self):
        sql = "SELECT count(actor?.name?) WHERE ?x.a? = 'v' AND year? > 1995"
        text = roundtrip(sql)
        assert "actor?.name?" in text
        assert "?x.a?" in text
        assert "year? > 1995" in text

    def test_parentheses_preserved_semantically(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        text = render(expr)
        reparsed = parse_expression(text)
        assert reparsed.op == "and"

    def test_string_escaping(self):
        expr = parse_expression("name = 'O''Brien'")
        text = render(expr)
        assert parse_expression(text).right.value == "O'Brien"

    def test_null_and_booleans(self):
        assert render(ast.Literal(None)) == "NULL"
        assert render(ast.Literal(True)) == "TRUE"

    def test_negative_numbers(self):
        assert render(parse_expression("-5 + 3")) == "-5 + 3"

    def test_nested_arithmetic_parens(self):
        expr = parse_expression("(1 + 2) * 3")
        reparsed = parse_expression(render(expr))
        assert reparsed.op == "*"

    def test_subtraction_right_assoc_parens(self):
        # 1 - (2 - 3) must keep its parentheses
        expr = parse_expression("1 - (2 - 3)")
        text = render(expr)
        assert parse_expression(text) == expr


class TestIdentifierQuoting:
    """Reserved words and non-identifier characters must render quoted
    (and survive a parse → render → parse round-trip)."""

    def test_plain_names_unquoted(self):
        from repro.sqlkit import render_identifier

        assert render_identifier("movie") == "movie"
        assert render_identifier("release_year") == "release_year"
        assert render_identifier("Person") == "Person"
        assert render_identifier("a$b_2") == "a$b_2"

    def test_reserved_words_quoted(self):
        from repro.sqlkit import render_identifier

        assert render_identifier("order") == '"order"'
        assert render_identifier("SELECT") == '"SELECT"'
        assert render_identifier("Group") == '"Group"'

    def test_special_characters_quoted(self):
        from repro.sqlkit import render_identifier

        assert render_identifier("line item") == '"line item"'
        assert render_identifier("1st") == '"1st"'
        assert render_identifier('we"ird') == '"we""ird"'

    def test_quoted_identifier_tokenizes_back(self):
        from repro.sqlkit import tokenize
        from repro.sqlkit.tokens import TokenType

        tokens = tokenize('"order"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "order"

    def test_unterminated_quoted_identifier_rejected(self):
        from repro.sqlkit import SqlSyntaxError, tokenize

        with pytest.raises(SqlSyntaxError):
            tokenize('SELECT "order FROM t')

    @pytest.mark.parametrize(
        "sql",
        [
            'SELECT "order" FROM "select"',
            'SELECT "order"."select" FROM "order" WHERE "line item" = 1',
            'SELECT a AS "group", "we""ird" FROM t ORDER BY "order" DESC',
            'SELECT "select".* FROM "select" JOIN u ON "select".id = u.id',
        ],
    )
    def test_quoted_round_trip(self, sql):
        roundtrip(sql)

    def test_quoted_names_parse_as_exact_terms(self):
        query = parse('SELECT "order" FROM "select"')
        item = query.items[0]
        assert item.expr.attribute.text == "order"
        assert item.expr.attribute.certainty is ast.Certainty.EXACT

    def test_uncertain_terms_keep_marker_unquoted(self):
        # quoting applies only to EXACT names; `?`-marked terms keep
        # their surface form (a quoted name cannot carry a marker).
        assert roundtrip("SELECT title? FROM movie?") == (
            "SELECT title? FROM movie?"
        )
