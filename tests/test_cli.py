"""Tests for the interactive shell (repro.cli)."""

import io

import pytest

from repro.cli import DATASETS, Shell, main


@pytest.fixture()
def shell(fig1_db):
    return Shell(fig1_db, top_k=1)


def run(shell, line):
    out = io.StringIO()
    alive = shell.run_command(line, out=out)
    return alive, out.getvalue()


class TestDotCommands:
    def test_tables(self, shell):
        _, text = run(shell, ".tables")
        assert "Person" in text and "Movie_Producer" in text

    def test_schema_shows_keys(self, shell):
        _, text = run(shell, ".schema Person")
        assert "person_id" in text and "PK" in text

    def test_schema_shows_fk_targets(self, shell):
        _, text = run(shell, ".schema Actor")
        assert "-> Person" in text and "-> Movie" in text

    def test_schema_unknown_relation(self, shell):
        _, text = run(shell, ".schema ghost")
        assert "unknown relation" in text

    def test_quit_stops(self, shell):
        alive, _ = run(shell, ".quit")
        assert not alive

    def test_unknown_command(self, shell):
        _, text = run(shell, ".frobnicate")
        assert "unknown command" in text

    def test_top_changes_k(self, shell):
        run(shell, ".top 3")
        assert shell.top_k == 3
        _, text = run(shell, ".top oops")
        assert "usage" in text

    def test_views_empty_then_logged(self, shell):
        _, text = run(shell, ".views")
        assert "(no views)" in text
        run(
            shell,
            ".log SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id",
        )
        _, text = run(shell, ".views")
        assert "[log]" in text and "Person" in text

    def test_help(self, shell):
        _, text = run(shell, ".help")
        assert ".tables" in text

    def test_explain_does_not_execute(self, shell):
        _, text = run(
            shell, ".explain SELECT title? WHERE year? > 2000"
        )
        assert "w=" in text
        assert "row(s)" not in text


class TestQueries:
    def test_translate_and_execute(self, shell):
        _, text = run(
            shell, "SELECT title? FROM movies? WHERE year? > 2000"
        )
        assert "SELECT" in text and "row(s)" in text

    def test_plain_sql_works(self, shell):
        _, text = run(shell, "SELECT count(*) FROM Movie")
        assert "3" in text

    def test_syntax_error_reported(self, shell):
        _, text = run(shell, "SELECT FROM WHERE")
        assert "error" in text.lower()

    def test_untranslatable_reported(self, shell):
        import dataclasses

        from repro.core import TranslatorConfig

        shell.translator.config = dataclasses.replace(
            shell.translator.config, kdef=0.0
        )
        _, text = run(shell, "SELECT 1 + 1")
        assert "2" in text  # constant queries always work

    def test_empty_line_is_noop(self, shell):
        alive, text = run(shell, "   ")
        assert alive and text == ""

    def test_top_k_shows_alternatives(self, shell):
        run(shell, ".top 3")
        _, text = run(
            shell,
            ".explain SELECT count(actor?.name?) "
            "WHERE director_name? = 'James Cameron'",
        )
        assert "[1]" in text and "[2]" in text


class TestMain:
    def test_execute_flag(self, capsys):
        exit_code = main(
            ["--dataset", "movies", "--execute", "SELECT count(*) FROM movie"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "row(s)" in captured.out

    def test_dataset_registry(self):
        assert set(DATASETS) == {"movies", "courses", "courses-alt"}
