"""Tests for the interactive shell (repro.cli)."""

import io

import pytest

from repro.cli import DATASETS, Shell, main


@pytest.fixture()
def shell(fig1_db):
    return Shell(fig1_db, top_k=1)


def run(shell, line):
    out = io.StringIO()
    alive = shell.run_command(line, out=out)
    return alive, out.getvalue()


class TestDotCommands:
    def test_tables(self, shell):
        _, text = run(shell, ".tables")
        assert "Person" in text and "Movie_Producer" in text

    def test_schema_shows_keys(self, shell):
        _, text = run(shell, ".schema Person")
        assert "person_id" in text and "PK" in text

    def test_schema_shows_fk_targets(self, shell):
        _, text = run(shell, ".schema Actor")
        assert "-> Person" in text and "-> Movie" in text

    def test_schema_unknown_relation(self, shell):
        _, text = run(shell, ".schema ghost")
        assert "unknown relation" in text

    def test_quit_stops(self, shell):
        alive, _ = run(shell, ".quit")
        assert not alive

    def test_unknown_command(self, shell):
        _, text = run(shell, ".frobnicate")
        assert "unknown command" in text

    def test_top_changes_k(self, shell):
        run(shell, ".top 3")
        assert shell.top_k == 3
        _, text = run(shell, ".top oops")
        assert "usage" in text

    def test_views_empty_then_logged(self, shell):
        _, text = run(shell, ".views")
        assert "(no views)" in text
        run(
            shell,
            ".log SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id",
        )
        _, text = run(shell, ".views")
        assert "[log]" in text and "Person" in text

    def test_help(self, shell):
        _, text = run(shell, ".help")
        assert ".tables" in text

    def test_explain_does_not_execute(self, shell):
        _, text = run(
            shell, ".explain SELECT title? WHERE year? > 2000"
        )
        assert "w=" in text
        assert "row(s)" not in text


class TestQueries:
    def test_translate_and_execute(self, shell):
        _, text = run(
            shell, "SELECT title? FROM movies? WHERE year? > 2000"
        )
        assert "SELECT" in text and "row(s)" in text

    def test_plain_sql_works(self, shell):
        _, text = run(shell, "SELECT count(*) FROM Movie")
        assert "3" in text

    def test_syntax_error_reported(self, shell):
        _, text = run(shell, "SELECT FROM WHERE")
        assert "error" in text.lower()

    def test_untranslatable_reported(self, shell):
        import dataclasses

        from repro.core import TranslatorConfig

        shell.translator.config = dataclasses.replace(
            shell.translator.config, kdef=0.0
        )
        _, text = run(shell, "SELECT 1 + 1")
        assert "2" in text  # constant queries always work

    def test_empty_line_is_noop(self, shell):
        alive, text = run(shell, "   ")
        assert alive and text == ""

    def test_top_k_shows_alternatives(self, shell):
        run(shell, ".top 3")
        _, text = run(
            shell,
            ".explain SELECT count(actor?.name?) "
            "WHERE director_name? = 'James Cameron'",
        )
        assert "[1]" in text and "[2]" in text


class TestMain:
    def test_execute_flag(self, capsys):
        exit_code = main(
            ["--dataset", "movies", "--execute", "SELECT count(*) FROM movie"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "row(s)" in captured.out

    def test_dataset_registry(self):
        assert set(DATASETS) == {"movies", "courses", "courses-alt"}


class TestBatchMode:
    def write_batch(self, tmp_path, lines):
        path = tmp_path / "batch.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_batch_reports_per_request_outcomes(self, tmp_path, capsys):
        path = self.write_batch(
            tmp_path,
            [
                "# comment lines and blanks are skipped",
                "",
                "SELECT name? WHERE director_name? = 'James Cameron'",
                "SELECT title? WHERE actor?.name? = 'Tom Hanks'",
            ],
        )
        exit_code = main(
            ["--dataset", "movies", "--batch", path, "--workers", "2"]
        )
        text = capsys.readouterr().out
        assert exit_code == 0
        assert "[1] ok" in text and "[2] ok" in text
        assert "rung=full" in text
        assert text.count("-> SELECT") == 2
        assert "2 ok, 0 failed, 0 shed" in text

    def test_batch_failure_renders_diagnostic_and_exit_code(
        self, tmp_path, capsys
    ):
        path = self.write_batch(
            tmp_path,
            [
                "SELECT name? WHERE director_name? = 'James Cameron'",
                "SELECT name? WHERE",  # syntax error
            ],
        )
        exit_code = main(["--dataset", "movies", "--batch", path])
        text = capsys.readouterr().out
        assert exit_code == 2  # syntax error dominates the batch code
        assert "[2] failed" in text
        assert "error:" in text
        assert "| stage: parse" in text

    def test_batch_writes_service_stats(self, tmp_path, capsys):
        import json as jsonlib

        path = self.write_batch(
            tmp_path, ["SELECT name? WHERE director_name? = 'James Cameron'"]
        )
        stats_path = tmp_path / "svc.json"
        exit_code = main(
            [
                "--dataset",
                "movies",
                "--batch",
                path,
                "--service-stats",
                str(stats_path),
            ]
        )
        assert exit_code == 0
        snapshot = jsonlib.loads(stats_path.read_text(encoding="utf-8"))
        assert snapshot["stats"]["completed"] == 1
        assert snapshot["breakers"]["default"]["state"] == "closed"


class TestExplainSubcommand:
    QUERY = "SELECT name? WHERE director_name? = 'James Cameron'"

    def test_explain_renders_span_tree(self, capsys):
        from repro.cli import run_explain

        exit_code = main(["explain", self.QUERY, "--dataset", "movies"])
        text = capsys.readouterr().out
        assert exit_code == 0
        assert "[1] w=" in text and "rung=full" in text
        # the annotated trace: root span, rung attempts, mapper sigmas
        assert "translate" in text
        assert "rung:full" in text
        assert "map.tree" in text
        assert "σ=" in text
        assert run_explain is not None  # direct entry point stays public

    def test_explain_writes_jsonl(self, tmp_path, capsys):
        import json as jsonlib

        trace_path = tmp_path / "trace.jsonl"
        exit_code = main(
            ["explain", self.QUERY, "--trace-out", str(trace_path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        records = [
            jsonlib.loads(line)
            for line in trace_path.read_text(encoding="utf-8").splitlines()
        ]
        assert any(r["name"] == "translate" for r in records)
        assert all(r["status"] in ("ok", "error") for r in records)

    def test_explain_syntax_error_exit_code(self, capsys):
        exit_code = main(["explain", "SELECT name? WHERE"])
        text = capsys.readouterr().out
        assert exit_code == 2
        assert "error:" in text


class TestObservabilityFlags:
    QUERY = "SELECT name? WHERE director_name? = 'James Cameron'"

    def test_trace_flag_renders_tree_after_results(self, capsys):
        exit_code = main(
            ["--dataset", "movies", "--trace", "--execute", self.QUERY]
        )
        text = capsys.readouterr().out
        assert exit_code == 0
        assert "SELECT" in text  # the translation itself still prints
        assert "translate" in text and "rung:full" in text

    def test_trace_out_appends_spans(self, tmp_path, capsys):
        import json as jsonlib

        trace_path = tmp_path / "spans.jsonl"
        exit_code = main(
            [
                "--dataset",
                "movies",
                "--trace-out",
                str(trace_path),
                "--execute",
                self.QUERY,
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        names = {
            jsonlib.loads(line)["name"]
            for line in trace_path.read_text(encoding="utf-8").splitlines()
        }
        assert {"translate", "parse", "map", "compose"} <= names

    def test_metrics_json_snapshot(self, tmp_path, capsys):
        import json as jsonlib

        metrics_path = tmp_path / "metrics.json"
        exit_code = main(
            [
                "--dataset",
                "movies",
                "--metrics",
                str(metrics_path),
                "--execute",
                self.QUERY,
            ]
        )
        text = capsys.readouterr().out
        assert exit_code == 0
        assert f"metrics written to {metrics_path}" in text
        snapshot = jsonlib.loads(metrics_path.read_text(encoding="utf-8"))
        queries = snapshot["repro_translate_queries_total"]["values"]
        assert queries == {"outcome=ok,rung=full": 1}

    def test_metrics_prometheus_exposition(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        exit_code = main(
            [
                "--dataset",
                "movies",
                "--metrics",
                str(metrics_path),
                "--execute",
                self.QUERY,
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        text = metrics_path.read_text(encoding="utf-8")
        assert "# TYPE repro_translate_queries_total counter" in text
        assert (
            'repro_translate_queries_total{outcome="ok",rung="full"} 1'
            in text
        )
        assert "repro_translate_total_seconds_bucket" in text

    def test_metrics_cover_batch_service(self, tmp_path, capsys):
        import json as jsonlib

        batch = tmp_path / "batch.txt"
        batch.write_text(self.QUERY + "\n", encoding="utf-8")
        metrics_path = tmp_path / "metrics.json"
        exit_code = main(
            [
                "--dataset",
                "movies",
                "--batch",
                str(batch),
                "--metrics",
                str(metrics_path),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        snapshot = jsonlib.loads(metrics_path.read_text(encoding="utf-8"))
        requests = snapshot["repro_service_requests_total"]["values"]
        assert requests == {"database=default,outcome=ok": 1}


class TestSqliteBackendFlag:
    def test_execute_on_sqlite_backend(self, capsys):
        exit_code = main(
            [
                "--dataset",
                "movies",
                "--backend",
                "sqlite",
                "--execute",
                "SELECT count(*) FROM movie",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "row(s)" in captured.out

    def test_results_agree_with_memory_backend(self, capsys):
        query = "SELECT title? WHERE release_year? > 2000"
        main(["--dataset", "movies", "--execute", query])
        memory_out = capsys.readouterr().out
        main(
            ["--dataset", "movies", "--backend", "sqlite", "--execute", query]
        )
        sqlite_out = capsys.readouterr().out
        memory_rows = {l for l in memory_out.splitlines() if l.startswith("  ")}
        sqlite_rows = {l for l in sqlite_out.splitlines() if l.startswith("  ")}
        assert memory_rows == sqlite_rows


class TestImportSubcommand:
    @pytest.fixture()
    def sqlite_file(self, fig1_db, tmp_path):
        from repro.engine.io import export_to_sqlite

        path = tmp_path / "fig1.sqlite"
        export_to_sqlite(fig1_db, path).close()
        return str(path)

    def test_import_reports_reflection(self, sqlite_file, capsys):
        exit_code = main(["import", sqlite_file, "--schema"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "6 relations, 6 foreign keys" in captured.out
        assert "Person" in captured.out

    def test_import_execute_translates_end_to_end(self, sqlite_file, capsys):
        exit_code = main(
            [
                "import",
                sqlite_file,
                "--execute",
                "SELECT title? WHERE director_name? = 'James Cameron'",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Titanic" in captured.out
        assert "Avatar" in captured.out

    def test_import_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import EXIT_ENGINE

        missing = str(tmp_path / "nope.sqlite")
        exit_code = main(["import", missing, "--schema"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_ENGINE
        assert "no such file" in captured.out
        assert not (tmp_path / "nope.sqlite").exists()

    def test_import_bad_query_exit_code(self, sqlite_file, capsys):
        from repro.cli import EXIT_SYNTAX

        exit_code = main(["import", sqlite_file, "--execute", "SELECT FROM"])
        capsys.readouterr()
        assert exit_code == EXIT_SYNTAX

    def test_import_corrupted_file_typed_diagnostic(self, tmp_path, capsys):
        """Satellite: a non-SQLite file gets a typed error, a rendered
        diagnostic, and the backend exit code — never a raw traceback."""
        from repro.cli import EXIT_BACKEND

        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"\x00garbage, not a database\xff" * 8)
        exit_code = main(["import", str(path), "--schema"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_BACKEND
        assert "error: cannot open SQLite database" in captured.out
        assert "  | " in captured.out  # diagnostic lines are rendered
        assert "Traceback" not in captured.out
