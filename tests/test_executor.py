"""Integration tests for query execution against the Figure 1 database."""

import pytest

from repro.engine import ExecutionError

# NOTE: fig1_db rows are defined in conftest.py:
#   Titanic (1997, dir Cameron, actors DiCaprio+Winslet, Fox+Paramount)
#   Avatar (2009, dir Cameron, actor Worthington, Fox)
#   The Terminal (2004, dir Spielberg, actor Hanks, DreamWorks)


class TestSelection:
    def test_simple_filter(self, fig1_db):
        result = fig1_db.execute(
            "SELECT title FROM Movie WHERE release_year > 2000 ORDER BY title"
        )
        assert result.rows == [("Avatar",), ("The Terminal",)]

    def test_projection_order_and_names(self, fig1_db):
        result = fig1_db.execute("SELECT release_year, title FROM Movie LIMIT 1")
        assert result.columns == ["release_year", "title"]

    def test_star_expansion(self, fig1_db):
        result = fig1_db.execute("SELECT * FROM Company ORDER BY company_id")
        assert result.columns == ["company_id", "name"]
        assert len(result) == 3

    def test_distinct(self, fig1_db):
        result = fig1_db.execute("SELECT DISTINCT movie_id FROM Movie_Producer")
        assert len(result) == 3

    def test_limit_offset(self, fig1_db):
        result = fig1_db.execute(
            "SELECT title FROM Movie ORDER BY release_year LIMIT 1 OFFSET 1"
        )
        assert result.rows == [("The Terminal",)]

    def test_between(self, fig1_db):
        result = fig1_db.execute(
            "SELECT title FROM Movie WHERE release_year BETWEEN 1995 AND 2005"
        )
        assert {r[0] for r in result} == {"Titanic", "The Terminal"}

    def test_like(self, fig1_db):
        result = fig1_db.execute("SELECT name FROM Person WHERE name LIKE '%Cameron%'")
        assert result.rows == [("James Cameron",)]

    def test_select_constant_without_from(self, fig1_db):
        assert fig1_db.execute("SELECT 1 + 1").scalar() == 2


class TestJoins:
    def test_two_way_join(self, fig1_db):
        result = fig1_db.execute(
            "SELECT p.name FROM Person p, Director d, Movie m "
            "WHERE p.person_id = d.person_id AND d.movie_id = m.movie_id "
            "AND m.title = 'Titanic'"
        )
        assert result.rows == [("James Cameron",)]

    def test_self_join_via_aliases(self, fig1_db):
        # actors who worked with director Cameron
        result = fig1_db.execute(
            "SELECT DISTINCT pa.name FROM Person pa, Actor a, Movie m, "
            "Director d, Person pd "
            "WHERE pa.person_id = a.person_id AND a.movie_id = m.movie_id "
            "AND m.movie_id = d.movie_id AND d.person_id = pd.person_id "
            "AND pd.name = 'James Cameron' ORDER BY pa.name"
        )
        assert result.rows == [
            ("Kate Winslet",),
            ("Leonardo DiCaprio",),
            ("Sam Worthington",),
        ]

    def test_explicit_inner_join(self, fig1_db):
        result = fig1_db.execute(
            "SELECT m.title FROM Director d JOIN Movie m "
            "ON d.movie_id = m.movie_id JOIN Person p "
            "ON p.person_id = d.person_id WHERE p.name = 'Steven Spielberg'"
        )
        assert result.rows == [("The Terminal",)]

    def test_left_join_pads_nulls(self, fig1_db):
        # every person, with their directed movie titles where any
        result = fig1_db.execute(
            "SELECT p.name, d.movie_id FROM Person p LEFT JOIN Director d "
            "ON p.person_id = d.person_id WHERE p.name = 'Tom Hanks'"
        )
        assert result.rows == [("Tom Hanks", None)]

    def test_cross_join_count(self, fig1_db):
        result = fig1_db.execute(
            "SELECT count(*) FROM Company, Movie"
        )
        assert result.scalar() == 9

    def test_duplicate_binding_rejected(self, fig1_db):
        with pytest.raises(ExecutionError):
            fig1_db.execute("SELECT 1 FROM Movie, Movie")

    def test_seven_relation_paper_query(self, fig1_db):
        result = fig1_db.execute(
            "SELECT count(P1.name) FROM Person AS P1, Person AS P2, Actor, "
            "Director, Movie, Movie_Producer, Company "
            "WHERE P1.gender = 'male' AND P2.name = 'James Cameron' "
            "AND Company.name = '20th Century Fox' "
            "AND Movie.release_year > 1995 AND Movie.release_year < 2005 "
            "AND P1.person_id = Actor.person_id "
            "AND Actor.movie_id = Movie.movie_id "
            "AND Movie.movie_id = Director.movie_id "
            "AND Director.person_id = P2.person_id "
            "AND Movie.movie_id = Movie_Producer.movie_id "
            "AND Movie_Producer.company_id = Company.company_id"
        )
        assert result.scalar() == 1  # DiCaprio in Titanic


class TestAggregation:
    def test_count_star(self, fig1_db):
        assert fig1_db.execute("SELECT count(*) FROM Person").scalar() == 6

    def test_count_distinct(self, fig1_db):
        assert (
            fig1_db.execute(
                "SELECT count(DISTINCT person_id) FROM Director"
            ).scalar()
            == 2
        )

    def test_group_by_with_having(self, fig1_db):
        result = fig1_db.execute(
            "SELECT p.name, count(*) AS n FROM Person p, Director d "
            "WHERE p.person_id = d.person_id "
            "GROUP BY p.name HAVING count(*) > 1"
        )
        assert result.rows == [("James Cameron", 2)]

    def test_aggregates_min_max_avg_sum(self, fig1_db):
        result = fig1_db.execute(
            "SELECT min(release_year), max(release_year), "
            "avg(release_year), sum(release_year) FROM Movie"
        )
        low, high, mean, total = result.rows[0]
        assert (low, high, total) == (1997, 2009, 6010)
        assert abs(mean - 6010 / 3) < 1e-9

    def test_aggregate_over_empty_input(self, fig1_db):
        result = fig1_db.execute(
            "SELECT count(*), max(release_year) FROM Movie "
            "WHERE release_year > 3000"
        )
        assert result.rows == [(0, None)]

    def test_group_by_orders_via_aggregate(self, fig1_db):
        result = fig1_db.execute(
            "SELECT c.name, count(*) AS n FROM Company c, Movie_Producer mp "
            "WHERE c.company_id = mp.company_id "
            "GROUP BY c.name ORDER BY n DESC, c.name"
        )
        assert result.rows[0] == ("20th Century Fox", 2)

    def test_arithmetic_over_aggregates(self, fig1_db):
        result = fig1_db.execute(
            "SELECT max(release_year) - min(release_year) FROM Movie"
        )
        assert result.scalar() == 12


class TestSubqueries:
    def test_uncorrelated_in(self, fig1_db):
        result = fig1_db.execute(
            "SELECT name FROM Person WHERE person_id IN "
            "(SELECT person_id FROM Director) ORDER BY name"
        )
        assert result.rows == [("James Cameron",), ("Steven Spielberg",)]

    def test_correlated_exists(self, fig1_db):
        result = fig1_db.execute(
            "SELECT p.name FROM Person p WHERE EXISTS "
            "(SELECT 1 FROM Actor a WHERE a.person_id = p.person_id) "
            "ORDER BY p.name"
        )
        assert len(result) == 4

    def test_scalar_subquery_comparison(self, fig1_db):
        result = fig1_db.execute(
            "SELECT title FROM Movie WHERE release_year = "
            "(SELECT max(release_year) FROM Movie)"
        )
        assert result.rows == [("Avatar",)]

    def test_quantified_all(self, fig1_db):
        result = fig1_db.execute(
            "SELECT title FROM Movie WHERE release_year >= ALL "
            "(SELECT release_year FROM Movie)"
        )
        assert result.rows == [("Avatar",)]

    def test_scalar_subquery_multiple_rows_raises(self, fig1_db):
        with pytest.raises(ExecutionError):
            fig1_db.execute(
                "SELECT title FROM Movie WHERE release_year = "
                "(SELECT release_year FROM Movie)"
            )

    def test_nested_two_levels(self, fig1_db):
        result = fig1_db.execute(
            "SELECT name FROM Person WHERE person_id IN "
            "(SELECT person_id FROM Actor WHERE movie_id IN "
            "(SELECT movie_id FROM Movie WHERE release_year < 2000))"
            "ORDER BY name"
        )
        assert result.rows == [("Kate Winslet",), ("Leonardo DiCaprio",)]


class TestSetOps:
    def test_union_dedupes(self, fig1_db):
        result = fig1_db.execute(
            "SELECT person_id FROM Director UNION SELECT person_id FROM Director"
        )
        assert len(result) == 2

    def test_union_all_keeps_duplicates(self, fig1_db):
        result = fig1_db.execute(
            "SELECT person_id FROM Director UNION ALL "
            "SELECT person_id FROM Director"
        )
        assert len(result) == 6

    def test_union_arity_mismatch_raises(self, fig1_db):
        with pytest.raises(ExecutionError):
            fig1_db.execute("SELECT 1 UNION SELECT 1, 2")


class TestOrdering:
    def test_nulls_last_ascending(self, fig1_db):
        result = fig1_db.execute(
            "SELECT p.name, d.movie_id FROM Person p LEFT JOIN Director d "
            "ON p.person_id = d.person_id ORDER BY d.movie_id, p.name"
        )
        assert result.rows[-1][1] is None

    def test_order_by_position(self, fig1_db):
        result = fig1_db.execute("SELECT title, release_year FROM Movie ORDER BY 2")
        assert result.rows[0][1] == 1997

    def test_order_by_alias(self, fig1_db):
        result = fig1_db.execute(
            "SELECT title AS t FROM Movie ORDER BY t DESC"
        )
        assert result.rows[0] == ("Titanic",)


class TestSchemaFreeRejection:
    def test_guessed_names_rejected_by_engine(self, fig1_db):
        with pytest.raises(ExecutionError):
            fig1_db.execute("SELECT name? FROM Movie")

    def test_guessed_table_rejected(self, fig1_db):
        with pytest.raises(ExecutionError):
            fig1_db.execute("SELECT title FROM movies?")
