"""Tests for database save/load round-trips."""

import datetime

import pytest

from repro import Catalog, Database, DataType
from repro.catalog import Attribute
from repro.engine.io import (
    catalog_from_dict,
    catalog_to_dict,
    load_database,
    save_database,
)


class TestCatalogRoundTrip:
    def test_catalog_round_trip(self, fig1_db):
        data = catalog_to_dict(fig1_db.catalog)
        rebuilt = catalog_from_dict(data)
        assert len(rebuilt) == len(fig1_db.catalog)
        assert len(rebuilt.foreign_keys) == len(fig1_db.catalog.foreign_keys)
        person = rebuilt.relation("Person")
        assert person.primary_key == ("person_id",)
        assert person.attribute("name").data_type is DataType.TEXT

    def test_nullable_preserved(self):
        catalog = Catalog("t")
        catalog.create_relation(
            "r", [Attribute("a", DataType.INTEGER, nullable=False)]
        )
        rebuilt = catalog_from_dict(catalog_to_dict(catalog))
        assert not rebuilt.relation("r").attribute("a").nullable


class TestDatabaseRoundTrip:
    def test_full_round_trip(self, fig1_db, tmp_path):
        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        for relation in fig1_db.catalog:
            assert loaded.rows(relation.name) == fig1_db.rows(relation.name)

    def test_queries_agree_after_reload(self, fig1_db, tmp_path):
        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        sql = (
            "SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id ORDER BY p.name"
        )
        assert loaded.execute(sql).rows == fig1_db.execute(sql).rows

    def test_dates_survive(self, tmp_path):
        catalog = Catalog("d")
        catalog.create_relation("t", [("day", DataType.DATE)])
        db = Database(catalog)
        db.insert("t", [datetime.date(2014, 6, 22)])
        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        assert loaded.rows("t") == [{"day": datetime.date(2014, 6, 22)}]

    def test_nulls_survive(self, tmp_path):
        catalog = Catalog("n")
        catalog.create_relation(
            "t", [("a", DataType.INTEGER), ("b", DataType.TEXT)]
        )
        db = Database(catalog)
        db.insert("t", [None, None])
        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        assert loaded.rows("t") == [{"a": None, "b": None}]

    def test_missing_relation_file_loads_empty(self, fig1_db, tmp_path):
        path = save_database(fig1_db, tmp_path / "dump")
        (path / "company.jsonl").unlink()
        loaded = load_database(path)
        assert loaded.count("Company") == 0

    def test_translator_works_on_loaded_db(self, fig1_db, tmp_path):
        from repro import SchemaFreeTranslator

        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        translator = SchemaFreeTranslator(loaded)
        best = translator.translate_best(
            "SELECT title? WHERE director?.name? = 'Steven Spielberg'"
        )
        assert loaded.execute(best.query).rows == [("The Terminal",)]
