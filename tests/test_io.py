"""Tests for database save/load round-trips."""

import datetime

import pytest

from repro import Catalog, Database, DataType
from repro.catalog import Attribute
from repro.engine.io import (
    catalog_from_dict,
    catalog_to_dict,
    load_database,
    save_database,
)


class TestCatalogRoundTrip:
    def test_catalog_round_trip(self, fig1_db):
        data = catalog_to_dict(fig1_db.catalog)
        rebuilt = catalog_from_dict(data)
        assert len(rebuilt) == len(fig1_db.catalog)
        assert len(rebuilt.foreign_keys) == len(fig1_db.catalog.foreign_keys)
        person = rebuilt.relation("Person")
        assert person.primary_key == ("person_id",)
        assert person.attribute("name").data_type is DataType.TEXT

    def test_nullable_preserved(self):
        catalog = Catalog("t")
        catalog.create_relation(
            "r", [Attribute("a", DataType.INTEGER, nullable=False)]
        )
        rebuilt = catalog_from_dict(catalog_to_dict(catalog))
        assert not rebuilt.relation("r").attribute("a").nullable


class TestDatabaseRoundTrip:
    def test_full_round_trip(self, fig1_db, tmp_path):
        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        for relation in fig1_db.catalog:
            assert loaded.rows(relation.name) == fig1_db.rows(relation.name)

    def test_queries_agree_after_reload(self, fig1_db, tmp_path):
        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        sql = (
            "SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id ORDER BY p.name"
        )
        assert loaded.execute(sql).rows == fig1_db.execute(sql).rows

    def test_dates_survive(self, tmp_path):
        catalog = Catalog("d")
        catalog.create_relation("t", [("day", DataType.DATE)])
        db = Database(catalog)
        db.insert("t", [datetime.date(2014, 6, 22)])
        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        assert loaded.rows("t") == [{"day": datetime.date(2014, 6, 22)}]

    def test_nulls_survive(self, tmp_path):
        catalog = Catalog("n")
        catalog.create_relation(
            "t", [("a", DataType.INTEGER), ("b", DataType.TEXT)]
        )
        db = Database(catalog)
        db.insert("t", [None, None])
        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        assert loaded.rows("t") == [{"a": None, "b": None}]

    def test_missing_relation_file_loads_empty(self, fig1_db, tmp_path):
        path = save_database(fig1_db, tmp_path / "dump")
        (path / "company.jsonl").unlink()
        loaded = load_database(path)
        assert loaded.count("Company") == 0

    def test_translator_works_on_loaded_db(self, fig1_db, tmp_path):
        from repro import SchemaFreeTranslator

        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        translator = SchemaFreeTranslator(loaded)
        best = translator.translate_best(
            "SELECT title? WHERE director?.name? = 'Steven Spielberg'"
        )
        assert loaded.execute(best.query).rows == [("The Terminal",)]


class TestServiceOverReloadedDatabase:
    """The query service must treat a reloaded database exactly like the
    original — same translations, and a *fresh* data version so stale
    context caches can never leak across a reload."""

    QUERIES = [
        "SELECT name? WHERE director_name? = 'James Cameron'",
        "SELECT title? WHERE actor?.name? = 'Tom Hanks'",
        "SELECT company?.name? WHERE movie?.title? = 'Avatar'",
    ]

    def test_service_results_identical_after_reload(self, fig1_db, tmp_path):
        from repro import QueryService

        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        with QueryService(fig1_db) as original_service:
            original = original_service.run(self.QUERIES)
        with QueryService(loaded) as reloaded_service:
            reloaded = reloaded_service.run(self.QUERIES)
        for before, after in zip(original, reloaded):
            assert after.ok and before.ok
            assert after.sql == before.sql
            assert after.rung == before.rung == "full"
            # and the SQL actually executes identically on both stores
            assert (
                loaded.execute(after.translations[0].query).rows
                == fig1_db.execute(before.translations[0].query).rows
            )

    def test_loaded_database_has_fresh_data_version(self, fig1_db, tmp_path):
        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        total_rows = sum(
            loaded.count(relation.name) for relation in loaded.catalog
        )
        assert total_rows > 0
        # versions count inserts from zero: a reload replays every row,
        # so the loaded store starts at its own row count, independent of
        # whatever version the saved database had reached
        assert loaded.data_version == total_rows

    def test_insert_into_loaded_db_invalidates_service_context(
        self, fig1_db, tmp_path
    ):
        from repro import QueryService

        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        with QueryService(loaded) as service:
            warm = service.translate_one(self.QUERIES[0])
            assert warm.ok
            assert service.context().stats.invalidations == 0
            loaded.insert("Person", [99, "Ang Lee", "male"])
            fresh = service.translate_one(self.QUERIES[0])
            assert fresh.ok
            # the shared context noticed the new data version and rebuilt
            assert service.context().stats.invalidations == 1
            assert fresh.sql == warm.sql


class TestSqliteRoundTrip:
    """save/load → export_to_sqlite → reflect must preserve the catalog
    (including FK order) and every row."""

    def test_reflected_catalog_equivalent(self, fig1_db, tmp_path):
        from repro.backends import SqliteBackend
        from repro.engine.io import export_to_sqlite

        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        backend = SqliteBackend(
            export_to_sqlite(loaded, tmp_path / "dump.sqlite")
        )
        original = fig1_db.catalog
        reflected = backend.catalog
        assert [r.name for r in reflected] == [r.name for r in original]
        for relation in original:
            mirror = reflected.relation(relation.name)
            assert mirror.attribute_names == relation.attribute_names
            assert tuple(mirror.primary_key) == tuple(relation.primary_key)
            for ours, theirs in zip(relation.attributes, mirror.attributes):
                assert ours.data_type is theirs.data_type
                assert ours.nullable == theirs.nullable
        assert [fk.key for fk in reflected.foreign_keys] == [
            fk.key for fk in original.foreign_keys
        ]
        backend.close()

    def test_row_counts_and_values_preserved(self, fig1_db, tmp_path):
        from repro.backends import SqliteBackend
        from repro.engine.io import export_to_sqlite

        save_database(fig1_db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        backend = SqliteBackend(
            export_to_sqlite(loaded, tmp_path / "dump.sqlite")
        )
        for relation in fig1_db.catalog:
            assert backend.count(relation.name) == fig1_db.count(relation.name)
            for attribute in relation.attributes:
                assert backend.column_values(
                    relation.name, attribute.name
                ) == fig1_db.column_values(relation.name, attribute.name)
        backend.close()

    def test_typed_values_survive_both_hops(self, tmp_path):
        from repro.backends import SqliteBackend
        from repro.engine.io import export_to_sqlite

        catalog = Catalog("typed")
        catalog.create_relation(
            "event",
            [
                ("event_id", DataType.INTEGER),
                ("flag", DataType.BOOLEAN),
                ("day", DataType.DATE),
            ],
            primary_key=["event_id"],
        )
        db = Database(catalog)
        db.insert("event", [1, True, datetime.date(1999, 12, 31)])
        db.insert("event", [2, False, None])
        save_database(db, tmp_path / "dump")
        loaded = load_database(tmp_path / "dump")
        backend = SqliteBackend(
            export_to_sqlite(loaded, tmp_path / "dump.sqlite")
        )
        assert backend.column_values("event", "flag") == [True, False]
        assert backend.column_values("event", "day") == [
            datetime.date(1999, 12, 31),
            None,
        ]
        backend.close()
