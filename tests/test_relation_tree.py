"""Unit tests for relation-tree merging (paper §3.2, Figure 4)."""

from repro.core.relation_tree import build_relation_trees, relation_key
from repro.core.triples import extract
from repro.sqlkit import ast, parse


def trees_for(sql):
    query = parse(sql)
    return build_relation_trees(extract(query))


class TestPaperExample:
    def test_figure4_produces_four_trees(self):
        trees = trees_for(
            "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
            "and director_name? = 'James Cameron' "
            "and produce_company? = '20th Century Fox' "
            "and year? > 1995 and year? < 2005"
        )
        assert len(trees) == 4

    def test_rule1_actor_tree_merges_name_and_gender(self):
        trees = trees_for(
            "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
            "and director_name? = 'James Cameron' "
            "and produce_company? = '20th Century Fox' "
            "and year? > 1995 and year? < 2005"
        )
        actor = next(t for t in trees if t.known_name == "actor")
        assert {a.name.text for a in actor.attribute_trees} == {
            "name",
            "gender",
        }

    def test_rule3_year_conditions_merge(self):
        trees = trees_for(
            "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
            "and director_name? = 'James Cameron' "
            "and produce_company? = '20th Century Fox' "
            "and year? > 1995 and year? < 2005"
        )
        year = next(
            t
            for t in trees
            if t.known_name is None
            and any(a.name.text == "year" for a in t.attribute_trees)
        )
        year_attr = year.attribute_trees[0]
        assert len(year_attr.conditions) == 2

    def test_tree_indexing_select_first(self):
        trees = trees_for(
            "SELECT count(actor?.name?) WHERE director_name? = 'X'"
        )
        assert trees[0].known_name == "actor"
        assert trees[0].label == "rt1"


class TestMergeRules:
    def test_rule2_same_relation_and_attribute_merge(self):
        trees = trees_for("SELECT t?.a? WHERE t?.a? > 1 AND t?.a? < 5")
        assert len(trees) == 1
        assert len(trees[0].attribute_trees) == 1
        assert len(trees[0].attribute_trees[0].conditions) == 2

    def test_alias_distinguishes_trees(self):
        trees = trees_for("SELECT m1.title FROM Movie m1, Movie m2 WHERE m2.year > 2000")
        movie_trees = [t for t in trees if t.known_name == "Movie"]
        assert len(movie_trees) == 2
        assert {t.alias for t in movie_trees} == {"m1", "m2"}

    def test_var_placeholders_merge_by_name(self):
        trees = trees_for("SELECT ?x.a? WHERE ?x.b? = 1 AND ?y.c? = 2")
        assert len(trees) == 2
        x_tree = next(t for t in trees if t.key == ("var", "x"))
        assert len(x_tree.attribute_trees) == 2

    def test_anonymous_placeholders_never_merge(self):
        trees = trees_for("SELECT a WHERE ? = 1 AND ? = 2")
        anon_trees = [t for t in trees if t.key[0] == "attranon"]
        assert len(anon_trees) == 2

    def test_from_relation_unifies_with_qualified_refs(self):
        trees = trees_for("SELECT person.name? FROM person WHERE person.age? > 3")
        assert len(trees) == 1
        assert len(trees[0].attribute_trees) == 2

    def test_from_alias_unifies(self):
        trees = trees_for("SELECT p.name? FROM person p")
        assert len(trees) == 1
        assert trees[0].name.text == "person"
        assert trees[0].alias == "p"

    def test_different_unqualified_attributes_stay_separate(self):
        trees = trees_for("SELECT a WHERE foo? = 1 AND bar? = 2")
        keys = {t.key for t in trees}
        assert ("attr", "foo") in keys and ("attr", "bar") in keys

    def test_guess_and_exact_same_text_merge(self):
        # the user is inconsistent but means the same relation
        trees = trees_for("SELECT actor.a?, actor?.b?")
        assert len(trees) == 1


class TestRelationKey:
    def test_pure_function_matches_merger(self):
        sql = "SELECT actor?.name? FROM person WHERE actor?.gender? = 'm'"
        query = parse(sql)
        extraction = extract(query)
        trees = build_relation_trees(extraction)
        refs = [
            node
            for node in query.walk()
            if isinstance(node, ast.ColumnRef)
        ]
        for ref in refs:
            key = relation_key(
                ref.relation, ref.attribute, extraction.from_bindings
            )
            assert any(t.key == key for t in trees)
