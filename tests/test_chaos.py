"""Chaos-harness tests: FaultyBackend, ResilientBackend, the
(operation x fault-kind) matrix, and the schema-evolution harness."""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendDegraded,
    BackendUnavailable,
    MemoryBackend,
    ResilientBackend,
    TransientBackendError,
)
from repro.cli import EXIT_BACKEND, exit_code_for
from repro.core import SchemaFreeTranslator
from repro.obs import MetricsRegistry, RingBufferExporter, Tracer
from repro.service.breaker import CLOSED, BreakerConfig
from repro.service.retry import NO_RETRY, RetryPolicy
from repro.testing import (
    BACKEND_OPS,
    DropForeignKey,
    EvolutionHarness,
    FaultInjector,
    FaultyBackend,
    MergeTables,
    RenameColumn,
    RenameTable,
    SplitTable,
    evolve,
    recover_vocabulary,
    standard_mutations,
)
from repro.testing.faults import _KINDS_BY_OP
from repro.workloads import TEXTBOOK_QUERIES

from .conftest import make_fig1_catalog, populate_fig1
from repro import Database


def make_chaos_stack(fig1_db, *, breaker=None, retry=None, timeouts=None):
    """ResilientBackend over FaultyBackend over MemoryBackend, on one
    shared virtual clock (no real time passes in any chaos test)."""
    injector = FaultInjector()
    faulty = FaultyBackend(MemoryBackend(fig1_db), injector)
    resilient = ResilientBackend(
        faulty,
        clock=injector.clock,
        sleep=injector.advance,
        breaker=breaker,
        retry=retry,
        timeouts=timeouts,
    )
    return resilient, faulty, injector


# ---------------------------------------------------------------------------
# FaultyBackend
# ---------------------------------------------------------------------------


class TestFaultyBackend:
    def test_error_fires_once_at_trigger(self, fig1_db):
        faulty = FaultyBackend(MemoryBackend(fig1_db))
        faulty.inject_error("sample", trigger=2)
        assert faulty.column_values("Movie", "title")  # visit 1: clean
        with pytest.raises(TransientBackendError):
            faulty.column_values("Movie", "title")  # visit 2: fires
        assert faulty.column_values("Movie", "title")  # visit 3: spent
        assert faulty.log == [("sample", "error")]

    def test_hang_advances_virtual_clock_only(self, fig1_db):
        faulty = FaultyBackend(MemoryBackend(fig1_db))
        faulty.inject_hang("count", seconds=30.0)
        before = faulty.injector.clock()
        assert faulty.count("Movie") == 3
        assert faulty.injector.clock() - before == pytest.approx(30.0)

    def test_torn_batch_is_silently_halved(self, fig1_db):
        faulty = FaultyBackend(MemoryBackend(fig1_db))
        whole = faulty.column_values("Person", "name")  # visit 1
        faulty.inject_torn("sample", trigger=2)
        torn = faulty.column_values("Person", "name")  # visit 2: fires
        assert torn == whole[: len(whole) // 2]

    def test_partial_reflect_raises_degraded_with_pruned_catalog(self, fig1_db):
        faulty = FaultyBackend(MemoryBackend(fig1_db))
        faulty.inject_partial_reflect(drop=2)
        with pytest.raises(BackendDegraded) as info:
            faulty.catalog
        partial = info.value.partial
        full = fig1_db.catalog
        assert len(partial.relations) == len(full.relations) - 2
        kept = {r.name for r in partial.relations}
        for fk in partial.foreign_keys:
            assert fk.source_relation in kept and fk.target_relation in kept

    def test_invalid_op_and_kind_rejected(self, fig1_db):
        faulty = FaultyBackend(MemoryBackend(fig1_db))
        with pytest.raises(ValueError):
            faulty.inject_error("mutate")
        with pytest.raises(ValueError):
            faulty.inject_torn("version")

    def test_seeded_schedule_is_reproducible(self, fig1_db):
        a = FaultyBackend(MemoryBackend(fig1_db))
        b = FaultyBackend(MemoryBackend(fig1_db))
        plan_a = [(f.op, f.kind, f.trigger) for f in a.schedule_from_seed(7)]
        plan_b = [(f.op, f.kind, f.trigger) for f in b.schedule_from_seed(7)]
        assert plan_a == plan_b
        assert plan_a != [
            (f.op, f.kind, f.trigger) for f in a.schedule_from_seed(8)
        ]


# ---------------------------------------------------------------------------
# ResilientBackend
# ---------------------------------------------------------------------------


class TestResilientBackend:
    def test_transient_fault_retries_to_success(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(fig1_db)
        faulty.inject_error("sample")
        values = rb.column_values("Movie", "title")
        assert sorted(values) == ["Avatar", "The Terminal", "Titanic"]
        assert rb.health.retries == 1
        assert not rb.health.degraded
        assert rb.breaker.state == CLOSED

    def test_exhausted_execute_raises_backend_unavailable(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(fig1_db)
        faulty.inject_error("execute", repeat=True)
        with pytest.raises(BackendUnavailable) as info:
            rb.execute("SELECT title FROM Movie")
        assert exit_code_for(info.value) == EXIT_BACKEND
        assert info.value.diagnostic is not None
        assert info.value.diagnostic.stage == "backend"

    def test_sampling_outage_degrades_to_empty_column(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(fig1_db)
        faulty.inject_error("sample", repeat=True)
        assert rb.column_values("Movie", "title") == []
        assert rb.health.stats_degraded
        assert rb.recommended_start_rung == "reduced"
        assert rb.health.diagnostics

    def test_hang_times_out_on_virtual_clock_then_recovers(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(fig1_db)
        faulty.inject_hang("sample", seconds=600.0)  # >> 5s sample timeout
        values = rb.column_values("Movie", "title")
        assert len(values) == 3
        assert rb.health.retries == 1

    def test_partial_reflection_keeps_partial_catalog(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(fig1_db)
        faulty.inject_partial_reflect(drop=1)
        catalog = rb.catalog
        assert len(catalog.relations) == len(fig1_db.catalog.relations) - 1
        assert rb.health.catalog_partial
        assert rb.recommended_start_rung == "reduced"
        # cached: the second read does not re-reflect
        assert rb.catalog is catalog

    def test_version_outage_serves_last_known_version(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(fig1_db)
        known = rb.data_version
        faulty.inject_error("version", repeat=True)
        assert rb.data_version == known
        assert rb.health.version_stale

    def test_version_outage_with_no_history_is_terminal(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(fig1_db)
        faulty.inject_error("version", repeat=True)
        with pytest.raises(BackendUnavailable):
            rb.data_version

    def test_semantic_error_propagates_unchanged(self, fig1_db):
        from repro.catalog import SchemaError

        rb, _, _ = make_chaos_stack(fig1_db)
        with pytest.raises(SchemaError):
            rb.column_values("Movei_Typo", "title")
        assert not rb.health.degraded
        assert rb.breaker.state == CLOSED

    def test_breaker_trips_and_pins_rung(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(
            fig1_db,
            breaker=BreakerConfig(failure_threshold=2),
            retry=NO_RETRY,
        )
        faulty.inject_error("count", repeat=True)
        for _ in range(2):
            with pytest.raises(BackendUnavailable):
                rb.count("Movie")
        assert rb.breaker.state != CLOSED
        assert rb.recommended_start_rung == "greedy"

    def test_retry_and_degrade_metrics_and_spans(self, fig1_db):
        ring = RingBufferExporter()
        metrics = MetricsRegistry()
        injector = FaultInjector()
        faulty = FaultyBackend(MemoryBackend(fig1_db), injector)
        rb = ResilientBackend(
            faulty,
            clock=injector.clock,
            sleep=injector.advance,
            tracer=Tracer(exporters=[ring]),
            metrics=metrics,
        )
        faulty.inject_error("sample")  # one retry
        faulty.inject_error("execute", repeat=True)  # terminal
        rb.column_values("Movie", "title")
        with pytest.raises(BackendUnavailable):
            rb.execute("SELECT title FROM Movie")
        names = [span.name for span in ring.spans()]
        assert "backend.retry" in names
        rendered = metrics.render_text()
        assert "repro_backend_retry_total" in rendered

    def test_faultless_translation_is_byte_identical(self, fig1_db):
        bare = MemoryBackend(fig1_db)
        rb = ResilientBackend(MemoryBackend(fig1_db))
        t_bare = SchemaFreeTranslator(bare)
        t_res = SchemaFreeTranslator(rb)
        for query in TEXTBOOK_QUERIES[:8]:
            sql = query.sf_sql or query.gold_sql
            assert (
                t_bare.translate_best(sql).sql == t_res.translate_best(sql).sql
            )
        assert not rb.health.degraded

    def test_translator_folds_backend_advice_into_ladder(self, fig1_db):
        rb, faulty, _ = make_chaos_stack(fig1_db)
        faulty.inject_error("sample", repeat=True)
        translator = SchemaFreeTranslator(rb)
        # first translation discovers the sampling outage mid-query;
        # the advice is folded at the *start* of the next one
        translator.translate_best("SELECT title? WHERE year? > 1995")
        assert rb.health.stats_degraded
        result = translator.translate_best("SELECT title? WHERE year? > 1995")
        steps = tuple(result.degradation)
        assert any("backend degraded" in step for step in steps)
        assert any("statistics sampling failed" in step for step in steps)


# ---------------------------------------------------------------------------
# the (operation x fault kind) matrix — ISSUE satellite
# ---------------------------------------------------------------------------

MATRIX = [
    (op, kind) for op in BACKEND_OPS for kind in _KINDS_BY_OP[op]
]

#: per-cell allowed typed outcomes; anything outside fails the matrix
EXPECTED_VERDICTS = {
    ("reflect", "error"): {"backend-error"},
    ("reflect", "hang"): {"backend-error"},
    ("reflect", "partial-reflect"): {"degraded"},
    ("sample", "error"): {"degraded"},
    ("sample", "hang"): {"degraded"},
    ("sample", "torn"): {"ok"},
    ("execute", "error"): {"backend-error"},
    ("execute", "hang"): {"backend-error"},
    ("execute", "torn"): {"ok"},
    ("count", "error"): {"backend-error"},
    ("count", "hang"): {"backend-error"},
    ("version", "error"): {"backend-error"},
    ("version", "hang"): {"backend-error"},
}


def drive(rb: ResilientBackend, op: str):
    if op == "reflect":
        return rb.catalog
    if op == "sample":
        return rb.column_values("Movie", "title")
    if op == "execute":
        return rb.execute("SELECT title FROM Movie")
    if op == "count":
        return rb.count("Movie")
    if op == "version":
        return rb.data_version
    raise AssertionError(f"unknown op {op}")


def run_cell(fig1_db, op: str, kind: str, request_id: int):
    """One matrix cell: inject the fault repeatedly, drive the op, and
    classify the outcome.  Returns (verdict, exit_code)."""
    injector = FaultInjector()
    faulty = FaultyBackend(MemoryBackend(fig1_db), injector)
    rb = ResilientBackend(
        faulty,
        clock=injector.clock,
        sleep=injector.advance,
        request_id=request_id,
    )
    if kind == "error":
        faulty.inject_error(op, repeat=True)
    elif kind == "hang":
        # every attempt hangs past any per-op deadline: the terminal
        # path (retries exhausted) is what the cell asserts
        faulty.inject_hang(op, seconds=3600.0, repeat=True)
    elif kind == "torn":
        faulty.inject_torn(op, repeat=True)
    elif kind == "partial-reflect":
        faulty.inject_partial_reflect(drop=1)
    try:
        drive(rb, op)
    except Exception as exc:  # the matrix's whole point: classify, never crash — the test REPL survives
        from repro.backends.errors import BackendError

        if isinstance(exc, BackendError):
            return "backend-error", exit_code_for(exc)
        return f"unhandled:{type(exc).__name__}", exit_code_for(exc)
    if rb.health.degraded:
        return "degraded", 0
    if rb.health.retries:
        return "retried", 0
    return "ok", 0


class TestFaultMatrix:
    @pytest.mark.parametrize("op,kind", MATRIX)
    def test_every_cell_ends_in_a_typed_outcome(self, fig1_db, op, kind):
        verdict, code = run_cell(fig1_db, op, kind, request_id=0)
        assert verdict in EXPECTED_VERDICTS[(op, kind)], (
            f"({op}, {kind}) produced {verdict!r}"
        )
        assert code in (0, EXIT_BACKEND)

    @pytest.mark.parametrize("op,kind", MATRIX)
    def test_verdicts_stable_across_retry_jitter_seeds(self, fig1_db, op, kind):
        outcomes = {
            run_cell(fig1_db, op, kind, request_id=seed)
            for seed in (0, 17, 4242)
        }
        assert len(outcomes) == 1, (
            f"({op}, {kind}) verdict depends on the jitter seed: {outcomes}"
        )

    def test_seeded_schedules_never_crash_translation(self, fig1_db):
        """Every seeded multi-fault schedule ends in a typed outcome:
        a translation result or a ReproError — never a raw crash."""
        from repro.errors import ReproError

        for seed in range(6):
            injector = FaultInjector()
            faulty = FaultyBackend(MemoryBackend(fig1_db), injector)
            faulty.schedule_from_seed(seed)
            rb = ResilientBackend(
                faulty, clock=injector.clock, sleep=injector.advance
            )
            try:
                translator = SchemaFreeTranslator(rb)
                result = translator.translate_best(
                    "SELECT title? WHERE year? > 1995"
                )
                rb.execute(result.query)
            except ReproError as exc:
                assert exit_code_for(exc) in (2, 3, 4, 5, 7)


# ---------------------------------------------------------------------------
# schema evolution
# ---------------------------------------------------------------------------


@pytest.fixture()
def fresh_fig1():
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return db


class TestMutations:
    def test_rename_table_moves_rows_and_fks(self, fresh_fig1):
        evolved = RenameTable("Movie", "Film").apply(fresh_fig1)
        catalog = evolved.catalog
        assert not catalog.has_relation("Movie")
        assert catalog.has_relation("Film")
        assert evolved.database.count("Film") == 3
        fk_targets = {fk.target_relation for fk in catalog.foreign_keys}
        assert "Film" in fk_targets and "Movie" not in fk_targets
        assert evolved.relation_renames == {"Movie": "Film"}

    def test_rename_column_updates_pk_fk_and_rows(self, fresh_fig1):
        evolved = RenameColumn("Movie", "movie_id", "film_id").apply(fresh_fig1)
        movie = evolved.catalog.relation("Movie")
        assert movie.primary_key == ("film_id",)
        assert sorted(evolved.database.column_values("Movie", "film_id")) == [
            10, 11, 12,
        ]
        renamed_fk = [
            fk
            for fk in evolved.catalog.foreign_keys
            if fk.target_relation == "Movie"
        ]
        assert renamed_fk and all(
            fk.target_attribute == "film_id" for fk in renamed_fk
        )

    def test_split_table_moves_column_behind_fk(self, fresh_fig1):
        evolved = SplitTable("Movie", ("release_year",), "Movie_Detail").apply(
            fresh_fig1
        )
        assert not evolved.catalog.relation("Movie").has_attribute(
            "release_year"
        )
        detail = evolved.catalog.relation("Movie_Detail")
        assert detail.has_attribute("release_year")
        assert evolved.database.count("Movie_Detail") == 3
        assert sorted(
            evolved.database.column_values("Movie_Detail", "release_year")
        ) == [1997, 2004, 2009]

    def test_merge_inlines_target_and_joins_rows(self, fresh_fig1):
        evolved = MergeTables("Movie_Producer", "Company").apply(fresh_fig1)
        assert not evolved.catalog.has_relation("Company")
        merged = evolved.catalog.relation("Movie_Producer")
        assert merged.has_attribute("name")
        names = evolved.database.column_values("Movie_Producer", "name")
        assert "20th Century Fox" in names
        assert evolved.relation_renames == {"Company": "Movie_Producer"}

    def test_drop_foreign_key_removes_only_that_edge(self, fresh_fig1):
        before = len(fresh_fig1.catalog.foreign_keys)
        evolved = DropForeignKey("Actor", "Movie").apply(fresh_fig1)
        assert len(evolved.catalog.foreign_keys) == before - 1
        assert evolved.database.count("Actor") == 4

    def test_evolve_composes_rename_chains(self, fresh_fig1):
        evolved = evolve(
            fresh_fig1,
            [RenameTable("Movie", "Film"), RenameTable("Film", "Feature")],
        )
        assert evolved.relation_renames == {
            "Movie": "Feature",
            "Film": "Feature",
        }
        assert evolved.database.count("Feature") == 3


class TestVocabularyRecovery:
    def test_recovers_rename_string_similarity_misses(self, fresh_fig1):
        evolved = RenameTable("Movie", "Zorbflick").apply(fresh_fig1)
        recovery = recover_vocabulary(
            fresh_fig1.catalog,
            evolved.catalog,
            ["SELECT m.title FROM Movie m, Actor a WHERE a.movie_id = m.movie_id"],
        )
        assert ("Zorbflick", "Movie") in recovery.relation_aliases

    def test_recovers_unique_remainder_column_rename(self, fresh_fig1):
        evolved = RenameColumn("Movie", "release_year", "zz_when").apply(
            fresh_fig1
        )
        recovery = recover_vocabulary(fresh_fig1.catalog, evolved.catalog)
        assert ("Movie", "zz_when", "release_year") in recovery.attribute_aliases

    def test_aliases_restore_translation_after_opaque_rename(self, fresh_fig1):
        evolved = RenameTable("Movie", "Zorbflick").apply(fresh_fig1)
        translator = SchemaFreeTranslator(evolved.database)
        recovery = recover_vocabulary(fresh_fig1.catalog, evolved.catalog)
        recovery.apply(translator.context)
        result = translator.translate_best("SELECT movie?.title?")
        assert "Zorbflick" in result.sql

    def test_recovery_apply_invalidates_network_memo(self, fresh_fig1):
        # applying recovered aliases to a *live* context must drop the
        # generated-network memo: alias registration changes mapping
        # candidates, so a warm entry keyed on the old vocabulary is stale
        evolved = RenameTable("Movie", "Zorbflick").apply(fresh_fig1)
        translator = SchemaFreeTranslator(evolved.database)
        context = translator.context
        translator.translate("SELECT person?.name?", top_k=3)
        translator.translate("SELECT person?.name?", top_k=3)
        assert context.stats.network_hits >= 1
        misses = context.stats.network_misses
        recovery = recover_vocabulary(fresh_fig1.catalog, evolved.catalog)
        assert recovery.relation_aliases
        recovery.apply(context)
        translator.translate("SELECT person?.name?", top_k=3)
        assert context.stats.network_misses > misses


class TestEvolutionHarness:
    def test_stability_one_for_untouched_relation(self, fresh_fig1):
        harness = EvolutionHarness(
            fresh_fig1,
            [("Q1", "SELECT person?.name? WHERE gender? = 'male'")],
        )
        record = harness.check(RenameTable("Company", "Studio"))
        assert record.verdicts == {"Q1": "stable"}
        assert record.stability == 1.0

    def test_report_scores_per_mutation_class(self, fresh_fig1):
        harness = EvolutionHarness(
            fresh_fig1,
            [
                ("Q1", "SELECT movie?.title? WHERE year? > 1995"),
                ("Q2", "SELECT person?.name?"),
            ],
        )
        report = harness.run(standard_mutations(fresh_fig1.catalog))
        assert report.ok
        by_class = report.by_class()
        assert set(by_class) >= {"rename-table", "rename-column"}
        for score in by_class.values():
            assert 0.0 <= score <= 1.0
        payload = report.as_dict()
        assert payload["stability_by_class"] == by_class

    def test_recovery_improves_or_matches_stability(self, fresh_fig1):
        queries = [("Q1", "SELECT movie?.title? WHERE year? > 1995")]
        mutation = RenameTable("Movie", "Zorbflick")
        with_recovery = EvolutionHarness(
            fresh_fig1,
            queries,
            log_sql=[
                "SELECT m.title FROM Movie m, Director d "
                "WHERE d.movie_id = m.movie_id"
            ],
        ).check(mutation)
        without = EvolutionHarness(
            fresh_fig1, queries, recover=False
        ).check(mutation)
        assert with_recovery.stability >= without.stability
