"""Tests for the Figure 17 baselines: Regular and Rightmost generators."""

import pytest

from repro.baselines import RegularGenerator, RightmostGenerator
from repro.core import TranslatorConfig
from repro.core.mtjn import MTJNGenerator

from tests.helpers import PAPER_QUERY, make_xgraph


def best_weight(db, generator_class, sql=PAPER_QUERY, k=1):
    graph, trees, _ = make_xgraph(db, sql)
    generator = generator_class(graph, TranslatorConfig())
    networks = generator.generate(k)
    assert networks, f"{generator_class.__name__} found nothing"
    return (
        networks[0].best_weight(graph.view_instances),
        generator.stats,
        networks,
        trees,
    )


class TestAgreementWithOurs:
    """All three algorithms solve the same optimisation problem: the
    weight of the best network must agree."""

    @pytest.mark.parametrize(
        "sql",
        [
            PAPER_QUERY,
            "SELECT title? WHERE director?.name? = 'Steven Spielberg'",
            "SELECT actor?.name? WHERE movie?.title? = 'Titanic'",
        ],
    )
    def test_top1_weight_agreement(self, fig1_db, sql):
        w_ours, _, _, _ = best_weight(fig1_db, MTJNGenerator, sql)
        w_regular, _, _, _ = best_weight(fig1_db, RegularGenerator, sql)
        w_rightmost, _, _, _ = best_weight(fig1_db, RightmostGenerator, sql)
        assert w_ours == pytest.approx(w_regular)
        assert w_ours == pytest.approx(w_rightmost)

    def test_results_are_valid_mtjns(self, fig1_db):
        for generator_class in (RegularGenerator, RightmostGenerator):
            _, _, networks, trees = best_weight(
                fig1_db, generator_class, k=3
            )
            required = [t.key for t in trees]
            for network in networks:
                assert network.is_total(required)
                assert network.is_minimal()


class TestEfficiencyOrdering:
    """Figure 17's mechanism: Regular does vastly more work."""

    def test_regular_expands_most(self, fig1_db):
        _, stats_ours, _, _ = best_weight(fig1_db, MTJNGenerator)
        _, stats_regular, _, _ = best_weight(fig1_db, RegularGenerator)
        _, stats_rightmost, _, _ = best_weight(fig1_db, RightmostGenerator)
        assert stats_regular.expanded > stats_rightmost.expanded
        assert stats_regular.expanded > stats_ours.expanded

    def test_pruning_reduces_work_vs_rightmost(self, fig1_db):
        _, stats_ours, _, _ = best_weight(fig1_db, MTJNGenerator)
        _, stats_rightmost, _, _ = best_weight(fig1_db, RightmostGenerator)
        assert stats_ours.expanded <= stats_rightmost.expanded


class TestTopK:
    def test_baselines_return_k_distinct_networks(self, fig1_db):
        _, _, networks, _ = best_weight(fig1_db, RightmostGenerator, k=5)
        canonicals = {n.canonical for n in networks}
        assert len(canonicals) == len(networks) >= 2

    def test_weights_sorted_descending(self, fig1_db):
        graph, _, _ = make_xgraph(fig1_db)
        networks = RightmostGenerator(graph, TranslatorConfig()).generate(5)
        weights = [n.best_weight(graph.view_instances) for n in networks]
        assert weights == sorted(weights, reverse=True)
