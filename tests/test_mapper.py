"""Unit tests for the Relation Tree Mapper (paper §4, Definition 1)."""

import pytest

from repro import Catalog, Database, DataType
from repro.core import TranslatorConfig
from repro.core.mapper import RelationTreeMapper
from repro.core.relation_tree import build_relation_trees
from repro.core.triples import extract
from repro.sqlkit import parse


def trees_for(sql):
    return build_relation_trees(extract(parse(sql)))


@pytest.fixture()
def mapper(fig1_db):
    return RelationTreeMapper(fig1_db)


class TestMappingSets:
    def test_exact_name_maps_uniquely(self, mapper):
        tree = trees_for("SELECT Movie.title FROM Movie")[0]
        mapping = mapper.map_tree(tree)
        assert mapping.best.relation.name == "Movie"

    def test_relative_threshold_keeps_close_candidates(self, mapper):
        # a very vague guess keeps several candidates in play (paper's
        # rationale for the relative sigma threshold)
        tree = trees_for("SELECT x WHERE thing? = 1")[0]
        mapping = mapper.map_tree(tree)
        assert len(mapping.candidates) >= 1

    def test_good_guess_prunes_others(self, mapper):
        tree = trees_for("SELECT actor?.gender?")[0]
        mapping = mapper.map_tree(tree)
        names = [m.relation.name for m in mapping.candidates]
        assert names[0] == "Person"

    def test_candidates_sorted_descending(self, mapper):
        tree = trees_for("SELECT movies?.title?")[0]
        mapping = mapper.map_tree(tree)
        sims = [m.similarity for m in mapping.candidates]
        assert sims == sorted(sims, reverse=True)

    def test_candidate_for_lookup(self, mapper):
        tree = trees_for("SELECT person?.name?")[0]
        mapping = mapper.map_tree(tree)
        assert mapping.candidate_for("person") is not None
        assert mapping.candidate_for("ghost_relation") is None

    def test_max_mappings_cap(self, fig1_db):
        config = TranslatorConfig(sigma=0.01, max_mappings=2)
        mapper = RelationTreeMapper(fig1_db, config)
        tree = trees_for("SELECT x WHERE thing? = 1")[0]
        mapping = mapper.map_tree(tree)
        assert len(mapping.candidates) <= 2

    def test_map_trees_covers_all(self, mapper):
        trees = trees_for(
            "SELECT count(actor?.name?) WHERE director_name? = 'X' "
            "AND year? > 1995"
        )
        mappings = mapper.map_trees(trees)
        assert set(mappings) == {t.key for t in trees}

    def test_attribute_map_attached_to_candidates(self, mapper):
        tree = trees_for("SELECT actor?.name?")[0]
        mapping = mapper.map_tree(tree)
        person = mapping.candidate_for("person")
        assert person is not None
        assert list(person.attribute_map.values()) == ["name"]


class TestSigmaTies:
    """Candidates tied with the maximum always belong to MAP(rt).

    Definition 1 uses a strict inequality — Sim > sigma * max — which
    with sigma = 1.0 (or any exact tie at the top) would drop *every*
    co-maximal candidate: nothing is strictly greater than the maximum.
    """

    @pytest.fixture()
    def twin_db(self):
        # two relations that score identically against the tree alpha?.val?
        catalog = Catalog("twins")
        for name in ("alpha_one", "alpha_two"):
            catalog.create_relation(
                name,
                [("id", DataType.INTEGER), ("val", DataType.TEXT)],
                primary_key=["id"],
            )
        return Database(catalog)

    def test_sigma_one_keeps_co_maximal_candidates(self, twin_db):
        mapper = RelationTreeMapper(twin_db, TranslatorConfig(sigma=1.0))
        mapping = mapper.map_tree(trees_for("SELECT alpha?.val?")[0])
        names = sorted(m.relation.name for m in mapping.candidates)
        assert names == ["alpha_one", "alpha_two"]
        sims = [m.similarity for m in mapping.candidates]
        assert sims[0] == sims[1] > 0.0

    def test_top_ties_kept_at_default_sigma(self, twin_db):
        mapper = RelationTreeMapper(twin_db)
        mapping = mapper.map_tree(trees_for("SELECT alpha?.val?")[0])
        assert len(mapping.candidates) == 2


class TestPaperMappings:
    """The Example 6 mapping: rt1, rt2 -> Person; rt3 -> Company;
    rt4 -> Movie."""

    def test_example6(self, mapper):
        trees = trees_for(
            "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
            "and director_name? = 'James Cameron' "
            "and produce_company? = '20th Century Fox' "
            "and year? > 1995 and year? < 2005"
        )
        mappings = mapper.map_trees(trees)
        best = {
            tree.label: mappings[tree.key].best.relation.name
            for tree in trees
        }
        assert best["rt1"] == "Person"
        assert best["rt2"] == "Person"
        assert best["rt3"] == "Company"
        assert best["rt4"] == "Movie"
