"""Tests for repro.backends: protocol, SQLite reflection, statistics,
dialect lowering, execution parity, and the backend-only context."""

from __future__ import annotations

import datetime
import sqlite3
import threading
from pathlib import Path

import pytest

from repro import Catalog, Database, DataType
from repro.backends import (
    Backend,
    MemoryBackend,
    SqliteBackend,
    UnsupportedSqlError,
    as_backend,
    lower,
    map_declared_type,
    reflect_catalog,
    to_sqlite_sql,
)
from repro.core.context import TranslationContext
from repro.core.translator import SchemaFreeTranslator
from repro.engine import ExecutionError, Result
from repro.engine.io import export_to_sqlite
from repro.obs import MetricsRegistry, RingBufferExporter, Tracer
from repro.sqlkit import ast, parse

from tests.conftest import make_fig1_catalog, populate_fig1


def make_fig1_sqlite(**kwargs) -> SqliteBackend:
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return SqliteBackend(export_to_sqlite(db, ":memory:"), name="fig1", **kwargs)


@pytest.fixture()
def fig1_sqlite() -> SqliteBackend:
    return make_fig1_sqlite()


# ---------------------------------------------------------------------------
# protocol / as_backend
# ---------------------------------------------------------------------------


class TestBackendProtocol:
    def test_memory_backend_satisfies_protocol(self, fig1_db):
        assert isinstance(MemoryBackend(fig1_db), Backend)

    def test_sqlite_backend_satisfies_protocol(self, fig1_sqlite):
        assert isinstance(fig1_sqlite, Backend)

    def test_as_backend_wraps_database(self, fig1_db):
        backend = as_backend(fig1_db)
        assert isinstance(backend, MemoryBackend)
        assert backend.kind == "memory"
        assert backend.database is fig1_db

    def test_as_backend_passes_backends_through(self, fig1_sqlite):
        assert as_backend(fig1_sqlite) is fig1_sqlite

    def test_memory_backend_delegates(self, fig1_db):
        backend = MemoryBackend(fig1_db)
        assert backend.catalog is fig1_db.catalog
        assert backend.count("Movie") == fig1_db.count("Movie")
        assert backend.column_values("Movie", "title") == fig1_db.column_values(
            "Movie", "title"
        )
        assert backend.data_version == fig1_db.data_version
        backend.close()  # no-op; database stays usable
        assert fig1_db.count("Movie") == 3

    def test_memory_backend_execute_returns_result(self, fig1_db):
        result = MemoryBackend(fig1_db).execute("SELECT title FROM Movie")
        assert isinstance(result, Result)
        assert len(result.rows) == 3


# ---------------------------------------------------------------------------
# catalog reflection
# ---------------------------------------------------------------------------


class TestReflection:
    def test_reflects_relations_attributes_and_pks(self, fig1_sqlite):
        original = make_fig1_catalog()
        reflected = fig1_sqlite.catalog
        assert len(reflected) == len(original)
        for relation in original:
            mirror = reflected.relation(relation.name)
            assert mirror.attribute_names == relation.attribute_names
            assert tuple(mirror.primary_key) == tuple(relation.primary_key)
            for ours, theirs in zip(relation.attributes, mirror.attributes):
                assert ours.data_type == theirs.data_type
                assert ours.nullable == theirs.nullable

    def test_reflects_fk_adjacency(self, fig1_sqlite):
        original = {fk.key for fk in make_fig1_catalog().foreign_keys}
        reflected = {fk.key for fk in fig1_sqlite.catalog.foreign_keys}
        assert reflected == original

    def test_skips_composite_foreign_keys(self):
        conn = sqlite3.connect(":memory:")
        conn.executescript(
            """
            CREATE TABLE parent (a INTEGER, b INTEGER, c INTEGER,
                                 PRIMARY KEY (a, b));
            CREATE TABLE child (
                x INTEGER, y INTEGER,
                FOREIGN KEY (x, y) REFERENCES parent (a, b)
            );
            """
        )
        catalog = reflect_catalog(conn)
        assert catalog.foreign_keys == []
        assert {r.name for r in catalog} == {"parent", "child"}

    def test_skips_dangling_foreign_keys(self):
        conn = sqlite3.connect(":memory:")
        # SQLite accepts FKs to tables that do not exist (checked lazily)
        conn.executescript(
            "CREATE TABLE child (x INTEGER REFERENCES ghost (id))"
        )
        catalog = reflect_catalog(conn)
        assert catalog.foreign_keys == []

    def test_unnamed_fk_target_defaults_to_pk(self):
        conn = sqlite3.connect(":memory:")
        conn.executescript(
            """
            CREATE TABLE parent (id INTEGER PRIMARY KEY, label TEXT);
            CREATE TABLE child (pid INTEGER REFERENCES parent);
            """
        )
        catalog = reflect_catalog(conn)
        (fk,) = catalog.foreign_keys
        assert (fk.source_attribute, fk.target_attribute) == ("pid", "id")

    def test_reflects_reserved_word_table_names(self):
        conn = sqlite3.connect(":memory:")
        conn.executescript(
            '''
            CREATE TABLE "order" (
                "order" INTEGER PRIMARY KEY,
                "select" TEXT NOT NULL,
                "line item" REAL
            );
            INSERT INTO "order" VALUES (1, 'a', 1.5), (2, 'b', 2.5);
            '''
        )
        backend = SqliteBackend(conn)
        relation = backend.catalog.relation("order")
        assert relation.attribute_names == ["order", "select", "line item"]
        assert backend.count("order") == 2
        assert backend.column_values("order", "select") == ["a", "b"]

    def test_declared_type_mapping(self):
        assert map_declared_type("INTEGER") is DataType.INTEGER
        assert map_declared_type("int") is DataType.INTEGER
        assert map_declared_type("BIGINT") is DataType.INTEGER
        assert map_declared_type("VARCHAR(40)") is DataType.TEXT
        assert map_declared_type("REAL") is DataType.FLOAT
        assert map_declared_type("DOUBLE PRECISION") is DataType.FLOAT
        assert map_declared_type("NUMERIC(8,2)") is DataType.FLOAT
        assert map_declared_type("BOOLEAN") is DataType.BOOLEAN
        assert map_declared_type("DATE") is DataType.DATE
        assert map_declared_type("DATETIME") is DataType.DATE
        assert map_declared_type(None) is DataType.TEXT
        assert map_declared_type("BLOB") is DataType.TEXT


# ---------------------------------------------------------------------------
# statistics provision
# ---------------------------------------------------------------------------


class TestStatistics:
    def test_column_values_match_memory_backend(self, fig1_db, fig1_sqlite):
        for relation in fig1_db.catalog:
            for attribute in relation.attributes:
                assert fig1_sqlite.column_values(
                    relation.name, attribute.name
                ) == fig1_db.column_values(relation.name, attribute.name), (
                    relation.name,
                    attribute.name,
                )

    def test_boolean_and_date_values_decoded(self):
        catalog = Catalog("typed")
        catalog.create_relation(
            "event",
            [
                ("event_id", DataType.INTEGER),
                ("flag", DataType.BOOLEAN),
                ("day", DataType.DATE),
                ("score", DataType.FLOAT),
            ],
            primary_key=["event_id"],
        )
        db = Database(catalog)
        db.insert("event", [1, True, datetime.date(2020, 5, 17), 4.0])
        db.insert("event", [2, False, None, None])
        backend = SqliteBackend(export_to_sqlite(db, ":memory:"))
        assert backend.column_values("event", "flag") == [True, False]
        assert backend.column_values("event", "day") == [
            datetime.date(2020, 5, 17),
            None,
        ]
        assert backend.column_values("event", "score") == [4.0, None]

    def test_sample_limit_caps_rows(self, fig1_db):
        backend = make_fig1_sqlite(sample_limit=2)
        assert backend.column_values("Person", "name") == ["James Cameron",
                                                           "Leonardo DiCaprio"]

    def test_count(self, fig1_db, fig1_sqlite):
        for relation in fig1_db.catalog:
            assert fig1_sqlite.count(relation.name) == fig1_db.count(
                relation.name
            )

    def test_data_version_moves_on_write(self, fig1_sqlite):
        before = fig1_sqlite.data_version
        fig1_sqlite._connection().execute(
            "INSERT INTO Person VALUES (99, 'Nobody', 'male')"
        )
        assert fig1_sqlite.data_version > before


# ---------------------------------------------------------------------------
# dialect lowering
# ---------------------------------------------------------------------------


class TestDialect:
    def test_division_becomes_udf(self):
        assert to_sqlite_sql(parse("SELECT a / b FROM t")) == (
            "SELECT repro_div(a, b) FROM t"
        )

    def test_modulo_becomes_udf(self):
        assert to_sqlite_sql(parse("SELECT a % 2 FROM t")) == (
            "SELECT repro_mod(a, 2) FROM t"
        )

    def test_eq_any_becomes_in(self):
        sql = to_sqlite_sql(
            parse("SELECT a FROM t WHERE a = ANY (SELECT b FROM u)")
        )
        assert "IN (SELECT b FROM u)" in sql
        assert "ANY" not in sql

    def test_ne_all_becomes_not_in(self):
        sql = to_sqlite_sql(
            parse("SELECT a FROM t WHERE a <> ALL (SELECT b FROM u)")
        )
        assert "NOT IN (SELECT b FROM u)" in sql

    def test_other_quantifiers_raise_typed_error(self):
        with pytest.raises(UnsupportedSqlError):
            to_sqlite_sql(
                parse("SELECT a FROM t WHERE a < ALL (SELECT b FROM u)")
            )

    def test_lower_is_pure(self):
        query = parse("SELECT a FROM t WHERE b > 1")
        assert lower(query) is query  # nothing to rewrite -> same object


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


class TestExecution:
    def test_result_shape(self, fig1_sqlite):
        result = fig1_sqlite.execute(
            "SELECT title, release_year FROM Movie ORDER BY release_year"
        )
        assert isinstance(result, Result)
        assert result.columns == ["title", "release_year"]
        assert result.rows == [
            ("Titanic", 1997),
            ("The Terminal", 2004),
            ("Avatar", 2009),
        ]

    def test_accepts_ast(self, fig1_sqlite):
        query = parse("SELECT count(*) FROM Person")
        assert fig1_sqlite.execute(query).rows == [(6,)]

    def test_engine_division_semantics(self, fig1_sqlite):
        result = fig1_sqlite.execute("SELECT 7 / 2, 8 / 2, 7.0 / 2")
        assert result.rows == [(3.5, 4, 3.5)]

    def test_division_by_zero_raises(self, fig1_sqlite):
        with pytest.raises(ExecutionError, match="division by zero"):
            fig1_sqlite.execute("SELECT 1 / 0")

    def test_modulo_by_zero_raises(self, fig1_sqlite):
        with pytest.raises(ExecutionError, match="modulo by zero"):
            fig1_sqlite.execute("SELECT 5 % 0")

    def test_engine_scalar_functions_registered(self, fig1_sqlite):
        result = fig1_sqlite.execute(
            "SELECT concat('a', 'b'), round(2.5), round(3.5), length('xyz')"
        )
        # round() is Python's half-even on both backends, not SQLite's
        # half-up; concat() exists even though SQLite 3.40 lacks it.
        assert result.rows == [("ab", 2.0, 4.0, 3)]

    def test_like_is_case_sensitive(self, fig1_sqlite):
        result = fig1_sqlite.execute(
            "SELECT name FROM Person WHERE name LIKE '%cameron%'"
        )
        assert result.rows == []
        result = fig1_sqlite.execute(
            "SELECT name FROM Person WHERE name LIKE '%Cameron%'"
        )
        assert result.rows == [("James Cameron",)]

    def test_scalar_function_error_surfaces_as_execution_error(
        self, fig1_sqlite
    ):
        with pytest.raises(ExecutionError, match="substr.*failed"):
            fig1_sqlite.execute("SELECT substr('abc', 'x')")

    def test_sqlite_error_wrapped(self, fig1_sqlite):
        with pytest.raises(ExecutionError, match="sqlite"):
            fig1_sqlite.execute("SELECT nonexistent_column FROM Person")

    def test_sql_for_shows_lowered_text(self, fig1_sqlite):
        assert fig1_sqlite.sql_for("SELECT 1 / 0") == "SELECT repro_div(1, 0)"

    def test_concurrent_executes(self, fig1_sqlite):
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                for _ in range(20):
                    result = fig1_sqlite.execute("SELECT count(*) FROM Actor")
                    assert result.rows == [(4,)]
            except BaseException as exc:  # noqa: BLE001 - test harness
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_close_releases_owned_connection(self, tmp_path):
        db = Database(make_fig1_catalog())
        populate_fig1(db)
        path = tmp_path / "fig1.sqlite"
        export_to_sqlite(db, path).close()
        backend = SqliteBackend(path)
        assert backend.count("Movie") == 3
        backend.close()
        # this thread's connection is closed in place...
        with pytest.raises(sqlite3.ProgrammingError):
            backend._connection().execute("SELECT 1")
        # ...and a thread arriving after close gets the typed error
        from repro.backends.errors import BackendUnavailable

        failures: list[BaseException] = []

        def late_worker() -> None:
            try:
                backend.count("Movie")
            except BaseException as exc:  # noqa: BLE001 - test harness
                failures.append(exc)

        thread = threading.Thread(target=late_worker)
        thread.start()
        thread.join()
        assert len(failures) == 1
        assert isinstance(failures[0], BackendUnavailable)

    def test_file_backed_workers_get_own_connections(self, tmp_path):
        """Satellite regression: 8 workers hammer one file-backed
        SqliteBackend; per-thread connections mean no cross-thread
        sqlite3 objects and no serialisation through one handle."""
        db = Database(make_fig1_catalog())
        populate_fig1(db)
        path = tmp_path / "fig1.sqlite"
        export_to_sqlite(db, path).close()
        backend = SqliteBackend(path)
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                for _ in range(20):
                    result = backend.execute("SELECT count(*) FROM Actor")
                    assert result.rows == [(4,)]
                    values = backend.column_values("Person", "name")
                    assert len(values) == 6
            except BaseException as exc:  # noqa: BLE001 - test harness
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # the main thread reflected on its own connection; each worker
        # added exactly one more
        assert len(backend._connections) == 9
        backend.close()

    def test_corrupted_file_raises_typed_backend_error(self, tmp_path):
        from repro.backends.errors import BackendUnavailable

        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"this is not a sqlite database at all\x00\x01")
        with pytest.raises(BackendUnavailable) as info:
            SqliteBackend(path)
        assert info.value.diagnostic is not None
        assert info.value.diagnostic.stage == "backend"


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_sqlite_backend_emits_spans_and_metrics(self):
        ring = RingBufferExporter()
        registry = MetricsRegistry()
        db = Database(make_fig1_catalog())
        populate_fig1(db)
        backend = SqliteBackend(
            export_to_sqlite(db, ":memory:"),
            tracer=Tracer(exporters=[ring]),
            metrics=registry,
        )
        backend.execute("SELECT title FROM Movie")
        names = [span.name for span in ring.spans()]
        assert "backend.reflect" in names
        assert "backend.execute" in names
        snapshot = registry.snapshot()
        assert "repro_backend_op_seconds" in snapshot
        assert "repro_backend_rows_total" in snapshot

    def test_memory_backend_emits_execute_metrics(self, fig1_db):
        registry = MetricsRegistry()
        backend = MemoryBackend(fig1_db, metrics=registry)
        backend.execute("SELECT title FROM Movie")
        assert "repro_backend_op_seconds" in registry.snapshot()


# ---------------------------------------------------------------------------
# translation from the Backend protocol alone (acceptance criterion)
# ---------------------------------------------------------------------------


class TestBackendOnlyTranslation:
    def test_context_builds_from_sqlite_backend_only(self, fig1_sqlite):
        context = TranslationContext(fig1_sqlite)
        assert len(context.relations) == 6
        sample = context.column_sample("Movie", "title")
        assert "Titanic" in sample
        context.ensure_current()  # data_version plumbing works

    def test_translator_runs_on_sqlite_backend(self, fig1_sqlite):
        translator = SchemaFreeTranslator(fig1_sqlite)
        best = translator.translate_best(
            "SELECT title? WHERE director_name? = 'James Cameron'"
        )
        result = fig1_sqlite.execute(best.query)
        assert sorted(result.rows) == [("Avatar",), ("Titanic",)]

    def test_core_has_no_database_imports(self):
        core = Path(__file__).resolve().parent.parent / "src" / "repro" / "core"
        offenders = []
        for module in sorted(core.glob("*.py")):
            text = module.read_text(encoding="utf-8")
            for line in text.splitlines():
                stripped = line.strip()
                if stripped.startswith(("import ", "from ")) and "Database" in stripped:
                    offenders.append(f"{module.name}: {stripped}")
        assert offenders == []


# ---------------------------------------------------------------------------
# export_to_sqlite
# ---------------------------------------------------------------------------


class TestExport:
    def test_export_replaces_existing_file(self, tmp_path):
        db = Database(make_fig1_catalog())
        populate_fig1(db)
        path = tmp_path / "out.sqlite"
        export_to_sqlite(db, path).close()
        export_to_sqlite(db, path).close()  # no "table exists" error
        backend = SqliteBackend(path)
        assert backend.count("Person") == 6
        backend.close()

    def test_export_into_existing_connection(self):
        db = Database(make_fig1_catalog())
        populate_fig1(db)
        conn = sqlite3.connect(":memory:")
        assert export_to_sqlite(db, conn) is conn
        (count,) = conn.execute("SELECT count(*) FROM Movie").fetchone()
        assert count == 3

    def test_export_preserves_declared_types(self):
        catalog = Catalog("typed")
        catalog.create_relation(
            "t",
            [
                ("i", DataType.INTEGER),
                ("f", DataType.FLOAT),
                ("s", DataType.TEXT),
                ("b", DataType.BOOLEAN),
                ("d", DataType.DATE),
            ],
        )
        db = Database(catalog)
        conn = export_to_sqlite(db, ":memory:")
        declared = {
            row[1]: row[2] for row in conn.execute("PRAGMA table_info(t)")
        }
        assert declared == {
            "i": "INTEGER",
            "f": "REAL",
            "s": "TEXT",
            "b": "BOOLEAN",
            "d": "DATE",
        }
