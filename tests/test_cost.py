"""Unit tests for the information-unit cost model (paper §7.1)."""

import pytest

from repro.core.cost import full_sql_cost, gui_cost, sfsql_cost

FIG2 = (
    "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
    "and director_name? = 'James Cameron' "
    "and produce_company? = '20th Century Fox' "
    "and year? > 1995 and year? < 2005"
)


class TestSfsqlCost:
    def test_paper_example11_is_six(self):
        # actor, gender, name, director_name, year, produce_company
        assert sfsql_cost(FIG2) == 6

    def test_repeated_elements_count_once(self):
        assert sfsql_cost("SELECT a? WHERE a? > 1 AND a? < 5") == 1

    def test_relation_and_attribute_both_count(self):
        assert sfsql_cost("SELECT t?.a?") == 2

    def test_var_placeholder_counts_once(self):
        assert sfsql_cost("SELECT ?x.a? WHERE ?x.b? = 1") == 3  # x, a, b

    def test_anonymous_placeholder_free(self):
        assert sfsql_cost("SELECT title? WHERE ? = 1997") == 1

    def test_from_relations_counted(self):
        assert sfsql_cost("SELECT a? FROM t?") == 2

    def test_exact_and_guess_merge(self):
        assert sfsql_cost("SELECT actor.a?, actor?.a?") == 2

    def test_subqueries_counted(self):
        cost = sfsql_cost(
            "SELECT a? WHERE b? IN (SELECT c? FROM t?)"
        )
        assert cost == 4


class TestFullSqlCost:
    def test_single_relation(self):
        assert full_sql_cost("SELECT title FROM movie WHERE year > 2000") == 3

    def test_join_conditions_cost_two_each(self):
        sql = (
            "SELECT p.name FROM person p, director d "
            "WHERE p.person_id = d.person_id"
        )
        # 2 relations + 1 projection + 2 join-condition sides
        assert full_sql_cost(sql) == 5

    def test_count_star_is_free(self):
        assert full_sql_cost("SELECT count(*) FROM movie") == 1

    def test_self_join_counts_occurrences(self):
        sql = (
            "SELECT a.name FROM person a, person b "
            "WHERE a.person_id = b.person_id"
        )
        assert full_sql_cost(sql) == 5

    def test_nested_blocks_summed(self):
        sql = (
            "SELECT title FROM movie WHERE movie_id IN "
            "(SELECT movie_id FROM director)"
        )
        # outer: movie + title + movie_id; inner: director + movie_id
        assert full_sql_cost(sql) == 5


class TestGuiCost:
    def test_joins_are_free(self):
        sql = (
            "SELECT p.name FROM person p, director d "
            "WHERE p.person_id = d.person_id"
        )
        assert gui_cost(sql) == 3  # 2 relations + 1 projection

    def test_value_conditions_still_cost(self):
        sql = (
            "SELECT p.name FROM person p, director d "
            "WHERE p.person_id = d.person_id AND p.gender = 'male'"
        )
        assert gui_cost(sql) == 4

    def test_gui_between_sf_and_sql(self, fig1_db):
        sql = (
            "SELECT count(P1.name) FROM Person AS P1, Person AS P2, Actor, "
            "Director, Movie, Movie_Producer, Company "
            "WHERE P1.gender = 'male' AND P2.name = 'James Cameron' "
            "AND Company.name = '20th Century Fox' "
            "AND Movie.release_year > 1995 AND Movie.release_year < 2005 "
            "AND P1.person_id = Actor.person_id "
            "AND Actor.movie_id = Movie.movie_id "
            "AND Movie.movie_id = Director.movie_id "
            "AND Director.person_id = P2.person_id "
            "AND Movie.movie_id = Movie_Producer.movie_id "
            "AND Movie_Producer.company_id = Company.company_id"
        )
        assert sfsql_cost(FIG2) < gui_cost(sql) < full_sql_cost(sql)

    def test_paper_figure14_q1_gui_cost(self):
        # 7 relations + gender, name, name, 2x release_year + projection = 13
        # (the paper reports 12, counting BETWEEN's attribute once)
        sql = (
            "SELECT DISTINCT pa.name FROM person pa, actor a, movie m, "
            "director d, person pd, movie_producer mp, company c "
            "WHERE pa.person_id = a.person_id AND a.movie_id = m.movie_id "
            "AND m.movie_id = d.movie_id AND d.person_id = pd.person_id "
            "AND m.movie_id = mp.movie_id AND mp.company_id = c.company_id "
            "AND pa.gender = 'male' AND pd.name = 'James Cameron' "
            "AND c.name = '20th Century Fox' "
            "AND m.release_year BETWEEN 1995 AND 2010"
        )
        assert gui_cost(sql) == 12
