"""White-box tests for Algorithm 2/3 internals: legality and potential."""

import pytest

from repro.core import TranslatorConfig
from repro.core.join_network import JoinNetwork
from repro.core.mtjn import MTJNGenerator

from tests.helpers import PAPER_QUERY, make_xgraph


def single_network(graph, trees, relation="person"):
    node = next(
        n for n in graph.nodes_for_tree(trees[0].key) if n.relation == relation
    )
    return node, JoinNetwork.single(node)


class TestLegality:
    def test_expansion_only_at_rightmost(self, fig1_db):
        graph, trees, _ = make_xgraph(fig1_db)
        node, network = single_network(graph, trees)
        # find any legal two-children state (the first child must be
        # mapped, or demoting it would be a dead-leaf violation)
        two_children = None
        for first_edge in graph.incident_edges(node):
            grown = network.expand_edge(first_edge, node)
            if grown is None:
                continue
            for second_edge in graph.incident_edges(node):
                candidate = grown.expand_edge(second_edge, node)
                if candidate is not None:
                    two_children = candidate
                    break
            if two_children is not None:
                break
        if two_children is None:
            pytest.skip("no legal two-children state on this graph")
        first_child_id = two_children.children[node.node_id][0]
        first_child = two_children.nodes[first_child_id]
        assert first_child_id not in two_children.rightmost
        for edge2 in graph.incident_edges(first_child):
            assert two_children.expand_edge(edge2, first_child) is None

    def test_dead_leaf_expansion_rejected(self, fig1_db):
        graph, trees, _ = make_xgraph(fig1_db)
        node, network = single_network(graph, trees)
        # attach an unmapped leaf, then try to branch elsewhere: demoting
        # the unmapped leaf would freeze it forever (Example 9)
        unmapped_edges = [
            e
            for e in graph.incident_edges(node)
            if not e.other(node).is_mapped
        ]
        grown = network.expand_edge(unmapped_edges[0], node)
        assert grown is not None
        for edge in graph.incident_edges(node):
            if edge is unmapped_edges[0]:
                continue
            candidate = grown.expand_edge(edge, node)
            # either rejected outright or only allowed when it extends the
            # rightmost (unmapped) branch — never freezing the dead leaf
            if candidate is not None:
                leaf_id = grown.children[node.node_id][0]
                assert leaf_id in candidate.rightmost or candidate.children[
                    leaf_id
                ]

    def test_fk_constraint_definition2(self, fig1_db):
        # one Actor occurrence cannot join two Person occurrences through
        # the same actor.person_id foreign key
        graph, trees, _ = make_xgraph(fig1_db)
        actor = next(
            n for n in graph.nodes if n.relation == "actor" and not n.is_mapped
        )
        network = JoinNetwork.single(actor)
        person_edges = [
            e
            for e in graph.incident_edges(actor)
            if e.other(actor).relation == "person"
            and "person" in e.fk_id[0] + e.fk_id[2]
            and e.attribute_of(actor) == "person_id"
        ]
        assert len(person_edges) >= 2  # several Person^(rt) targets
        first = network.expand_edge(person_edges[0], actor)
        assert first is not None
        assert first.expand_edge(person_edges[1], actor) is None

    def test_construction_weight_decreases_monotonically(self, fig1_db):
        graph, trees, _ = make_xgraph(fig1_db)
        node, network = single_network(graph, trees)
        current = network
        for _ in range(3):
            expansions = [
                current.expand_edge(e, n)
                for nid in current.rightmost
                for n in [current.nodes[nid]]
                for e in graph.incident_edges(n)
            ]
            expansions = [x for x in expansions if x is not None]
            if not expansions:
                break
            grown = expansions[0]
            assert grown.construction_weight <= current.construction_weight
            assert len(grown) == len(current) + 1
            current = grown


class TestPotential:
    def test_potential_upper_bounds_final_weight(self, fig1_db):
        config = TranslatorConfig()
        graph, trees, _ = make_xgraph(fig1_db)
        generator = MTJNGenerator(graph, config)
        required = [t.key for t in trees]
        networks = generator.generate(1)
        best = networks[0]
        # the potential of the bare root must be >= the winning weight
        root = next(
            node
            for node in best.nodes.values()
            if node.tree_key == trees[0].key
        )
        potential = generator._potential(JoinNetwork.single(root), [], 1)
        final = best.best_weight(graph.view_instances)
        assert potential >= final - 1e-9

    def test_unreachable_tree_gives_zero_potential(self, fig1_db):
        graph, trees, _ = make_xgraph(fig1_db)
        generator = MTJNGenerator(graph, TranslatorConfig())
        root = graph.nodes_for_tree(trees[0].key)[0]
        # removing every node of another tree makes it unreachable
        other_key = trees[1].key
        for node in list(graph.nodes_for_tree(other_key)):
            graph.remove_node(node)
        generator._invalidate_paths()
        potential = generator._potential(JoinNetwork.single(root), [], 1)
        assert potential == 0.0
        graph.restore_all()


class TestCanonicalForm:
    def test_isomorphic_constructions_share_canonical(self, fig1_db):
        graph, trees, _ = make_xgraph(fig1_db)
        node, network = single_network(graph, trees)
        edges = graph.incident_edges(node)[:2]
        if len(edges) < 2:
            pytest.skip("need two edges")
        one = network.expand_edge(edges[0], node)
        two = one.expand_edge(edges[1], node) if one else None
        if two is None:
            pytest.skip("expansion combination illegal")
        # build in the other order via legality-free expansion
        alt_one = network.expand_edge(edges[1], node, legality=False)
        alt_two = alt_one.expand_edge(edges[0], node, legality=False)
        assert alt_two.canonical == two.canonical
