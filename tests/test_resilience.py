"""Tests for the resilience layer: cooperative budgets, the degradation
ladder, deterministic fault injection, and the unified ``ReproError``
taxonomy with structured diagnostics."""

import io
import random

import pytest

from repro import (
    Budget,
    BudgetExceeded,
    Catalog,
    Database,
    DataType,
    Diagnostic,
    EngineError,
    ReproError,
    SchemaFreeTranslator,
    SqlSyntaxError,
    TranslationError,
    TranslatorConfig,
)
from repro.cli import (
    EXIT_ENGINE,
    EXIT_INTERNAL,
    EXIT_OK,
    EXIT_SYNTAX,
    EXIT_TRANSLATION,
    Shell,
    exit_code_for,
    main,
)
from repro.core import LADDER, NoJoinNetworkError
from repro.testing import FaultInjector, InjectedFault
from repro.testing.faults import STAGES

from tests.helpers import PAPER_QUERY


class FakeClock:
    """A manually advanced monotonic clock for deterministic deadlines."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_islands_db() -> Database:
    """Two relations with no foreign-key path between them: only the
    partial rung can produce a (cross-join) translation."""
    catalog = Catalog("islands")
    catalog.create_relation(
        "alpha",
        [("alpha_id", DataType.INTEGER), ("alpha_name", DataType.TEXT)],
        primary_key=["alpha_id"],
    )
    catalog.create_relation(
        "beta",
        [("beta_id", DataType.INTEGER), ("beta_name", DataType.TEXT)],
        primary_key=["beta_id"],
    )
    db = Database(catalog)
    db.insert("alpha", [1, "a1"])
    db.insert("alpha", [2, "a2"])
    db.insert("beta", [1, "b1"])
    return db


def make_dense_db(n: int = 12) -> Database:
    """A dense schema: ``n`` relations in a cycle, each with foreign keys
    to the next three — the join search has many legal networks."""
    catalog = Catalog("dense")
    for i in range(n):
        targets = [(i + 1) % n, (i + 2) % n, (i + 3) % n]
        catalog.create_relation(
            f"node{i}",
            [(f"node{i}_id", DataType.INTEGER), (f"tag{i}", DataType.TEXT)]
            + [(f"ref{j}", DataType.INTEGER) for j in targets],
            primary_key=[f"node{i}_id"],
        )
    for i in range(n):
        for j in ((i + 1) % n, (i + 2) % n, (i + 3) % n):
            catalog.add_foreign_key(f"node{i}", f"ref{j}", f"node{j}", f"node{j}_id")
    db = Database(catalog)
    for row in range(2):
        for i in range(n):
            db.insert(f"node{i}", [row, f"t{i}_{row}", None, None, None])
    return db


# ======================================================================
# Budget
# ======================================================================
class TestBudget:
    def test_unlimited_never_raises(self):
        budget = Budget.unlimited()
        budget.check("network")
        budget.charge_candidates(10_000)
        budget.charge_expansions(10_000)
        assert not budget.is_exhausted
        assert budget.remaining_time() is None

    def test_deadline_with_injected_clock(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        budget.check("network")
        assert budget.remaining_time() == pytest.approx(5.0)
        clock.advance(6.0)
        assert budget.time_exceeded()
        with pytest.raises(BudgetExceeded) as exc_info:
            budget.check("network")
        assert "deadline" in str(exc_info.value)
        assert exc_info.value.diagnostic.stage == "network"

    def test_exhaustion_is_sticky(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded):
            budget.check("map")
        assert budget.is_exhausted
        # even if time were rewound, a spent budget stays spent
        clock.advance(-2.0)
        with pytest.raises(BudgetExceeded):
            budget.check("compose")

    def test_candidate_cap(self):
        budget = Budget(max_candidates=3)
        budget.charge_candidates(3)
        with pytest.raises(BudgetExceeded) as exc_info:
            budget.charge_candidates(1)
        diagnostic = exc_info.value.diagnostic
        assert diagnostic.stage == "map"
        assert diagnostic.candidates == 4
        assert diagnostic.detail["max_candidates"] == 3

    def test_expansion_cap(self):
        budget = Budget(max_expansions=2)
        budget.charge_expansions(2)
        with pytest.raises(BudgetExceeded) as exc_info:
            budget.charge_expansions(1)
        assert exc_info.value.diagnostic.stage == "network"
        assert "expansion budget exhausted" in str(exc_info.value)

    def test_budget_exceeded_is_a_repro_error(self):
        assert issubclass(BudgetExceeded, ReproError)

    def test_slice_scales_time_and_counters(self):
        clock = FakeClock()
        parent = Budget(
            deadline=10.0, max_candidates=100, max_expansions=40, clock=clock
        )
        clock.advance(2.0)  # 8s remain
        child = parent.slice(0.5, counter_scale=0.25)
        assert child.deadline == pytest.approx(4.0)
        assert child.max_candidates == 25
        assert child.max_expansions == 10
        assert child.clock is clock
        # the child's counters are fresh, not inherited
        assert child.candidates == 0

    def test_slice_counters_never_scale_to_zero(self):
        parent = Budget(max_expansions=1)
        assert parent.slice(counter_scale=0.5).max_expansions == 1

    def test_snapshot_shape(self):
        budget = Budget(deadline=3.0, max_candidates=7)
        budget.charge_candidates(2)
        snap = budget.snapshot()
        assert snap["candidates"] == 2
        assert snap["max_candidates"] == 7
        assert snap["deadline"] == 3.0


# ======================================================================
# budget exhaustion through the pipeline (degrade=False -> typed errors)
# ======================================================================
class TestBudgetExhaustionPaths:
    def test_expansion_budget_raises_typed_error(self, fig1_translator):
        with pytest.raises(BudgetExceeded) as exc_info:
            fig1_translator.translate(
                PAPER_QUERY, budget=Budget(max_expansions=1), degrade=False
            )
        assert exc_info.value.diagnostic is not None
        assert exc_info.value.diagnostic.stage == "network"

    def test_deadline_raises_typed_error(self, fig1_translator):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.advance(5.0)
        with pytest.raises(BudgetExceeded):
            fig1_translator.translate(PAPER_QUERY, budget=budget, degrade=False)

    def test_degradation_defaults_on_when_budgeted(self, fig1_translator, fig1_db):
        # same starved budget, but degrade is left to default: the ladder
        # kicks in instead of the error surfacing
        translations = fig1_translator.translate(
            PAPER_QUERY, budget=Budget(max_expansions=1)
        )
        assert translations
        assert translations[0].is_degraded
        assert fig1_db.execute(translations[0].query) is not None


# ======================================================================
# the degradation ladder
# ======================================================================
class TestDegradationLadder:
    def test_ladder_rungs(self):
        assert LADDER == ("full", "reduced", "greedy", "partial")

    def test_full_rung_with_generous_budget(self, fig1_translator, fig1_db):
        budget = Budget(deadline=60.0, max_candidates=100_000, max_expansions=100_000)
        best = fig1_translator.translate_best(PAPER_QUERY, budget=budget)
        assert not best.is_degraded
        assert best.degradation == ()
        assert best.diagnostic is None
        assert fig1_db.execute(best.query).scalar() == 1

    def test_reduced_rung(self, fig1_db):
        # exhaust only the full rung's slice: the injected fault fires at
        # the network-stage entry, which the translator visits once
        injector = FaultInjector()
        injector.inject_budget_exhaustion("network")
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        best = translator.translate_best(PAPER_QUERY, budget=Budget(deadline=60.0))
        assert "rung: reduced" in best.diagnostic.message
        assert any("full search abandoned" in s for s in best.degradation)
        assert any("reduced search succeeded" in s for s in best.degradation)
        # the reduced search still finds the paper's correct answer
        assert fig1_db.execute(best.query).scalar() == 1

    def test_greedy_rung(self, fig1_translator, fig1_db):
        best = fig1_translator.translate_best(
            PAPER_QUERY, budget=Budget(max_expansions=2)
        )
        assert "rung: greedy" in best.diagnostic.message
        assert any("greedy single join path" in s for s in best.degradation)
        # the greedy path is a legal join network: it executes and still
        # reaches the right answer on the running example
        assert fig1_db.execute(best.query).scalar() == 1

    def test_partial_rung_when_deadline_already_spent(self, fig1_db):
        # a delay fault burns the whole deadline during the full rung;
        # reduced and greedy are then skipped and the partial composition
        # still returns a translation
        injector = FaultInjector()
        injector.inject_delay("network", 30.0)
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        best = translator.translate_best(
            PAPER_QUERY, budget=Budget(deadline=1.0, clock=injector.clock)
        )
        assert "rung: partial" in best.diagnostic.message
        assert any("greedy join path skipped" in s for s in best.degradation)
        assert best.sql
        fig1_db.execute(best.query)

    def test_partial_rung_on_disconnected_schema(self):
        db = make_islands_db()
        translator = SchemaFreeTranslator(db)
        best = translator.translate_best("SELECT alpha_name?, beta_name?", degrade=True)
        assert "rung: partial" in best.diagnostic.message
        assert best.weight == 0.0
        assert any("full search failed" in s for s in best.degradation)
        assert any("partial translation" in s for s in best.degradation)
        # composes to a cross join over the two islands
        rows = db.execute(best.query).rows
        assert sorted(rows) == [("a1", "b1"), ("a2", "b1")]

    def test_disconnected_schema_without_degradation_raises(self):
        translator = SchemaFreeTranslator(make_islands_db())
        with pytest.raises(NoJoinNetworkError) as exc_info:
            translator.translate_best("SELECT alpha_name?, beta_name?")
        assert exc_info.value.diagnostic.stage == "network"
        # the error names the trees it could not connect
        assert "rt1" in str(exc_info.value)

    def test_degradation_steps_exposed_on_translator(self, fig1_translator):
        fig1_translator.translate_best(PAPER_QUERY, budget=Budget(max_expansions=1))
        assert fig1_translator.last_degradation
        assert fig1_translator.last_diagnostic is None  # success: no error

    def test_diagnostic_mirrors_degradation(self, fig1_translator):
        best = fig1_translator.translate_best(
            PAPER_QUERY, budget=Budget(max_expansions=1)
        )
        assert best.diagnostic.degradation == best.degradation


# ======================================================================
# fault injection
# ======================================================================
class TestFaultInjection:
    @pytest.mark.parametrize("stage", STAGES)
    def test_error_fault_in_every_stage_is_typed(self, fig1_db, stage):
        injector = FaultInjector()
        injector.inject_error(stage)
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        with pytest.raises(ReproError) as exc_info:
            translator.translate(PAPER_QUERY)
        assert isinstance(exc_info.value, InjectedFault)
        assert exc_info.value.diagnostic.stage == stage
        assert injector.log == [(stage, "error")]

    def test_foreign_exception_is_wrapped_as_translation_error(self, fig1_db):
        injector = FaultInjector()
        injector.inject_error("map", ValueError("boom"))
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        with pytest.raises(TranslationError) as exc_info:
            translator.translate(PAPER_QUERY)
        assert "boom" in str(exc_info.value)
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_budget_fault_without_budget_raises(self, fig1_db):
        injector = FaultInjector()
        injector.inject_budget_exhaustion("compose")
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        with pytest.raises(BudgetExceeded):
            translator.translate(PAPER_QUERY)

    def test_delay_fault_is_virtual(self, fig1_db):
        # a 1000-second delay fault must not actually sleep
        injector = FaultInjector()
        injector.inject_delay("parse", 1000.0)
        budget = Budget(deadline=1.0, clock=injector.clock)
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        import time

        start = time.monotonic()
        best = translator.translate_best(PAPER_QUERY, budget=budget)
        assert time.monotonic() - start < 30.0
        assert best.is_degraded

    def test_trigger_counts_stage_visits(self, fig1_translator, fig1_db):
        injector = FaultInjector()
        injector.inject_error("parse", trigger=2)
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        translator.translate_best("SELECT 1 + 1")  # visit 1: no fire
        with pytest.raises(InjectedFault):
            translator.translate_best("SELECT 1 + 1")  # visit 2: fires
        assert injector.visits["parse"] == 2

    def test_one_shot_fault_fires_once(self, fig1_db):
        injector = FaultInjector()
        injector.inject_error("parse")
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        with pytest.raises(InjectedFault):
            translator.translate_best("SELECT 1 + 1")
        # not repeated: the next translation goes through
        assert translator.translate_best("SELECT 1 + 1").sql

    def test_repeating_fault_keeps_firing(self, fig1_db):
        injector = FaultInjector()
        injector.inject_error("parse", repeat=True)
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                translator.translate_best("SELECT 1 + 1")

    def test_reset_clears_everything(self, fig1_db):
        injector = FaultInjector()
        injector.inject_error("parse", repeat=True)
        injector.advance(50.0)
        translator = SchemaFreeTranslator(fig1_db, faults=injector)
        with pytest.raises(InjectedFault):
            translator.translate_best("SELECT 1 + 1")
        injector.reset()
        assert injector.log == []
        assert injector.visits == {}
        assert translator.translate_best("SELECT 1 + 1").sql

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().inject_error("optimize")


# ======================================================================
# the error taxonomy
# ======================================================================
class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(SqlSyntaxError, ReproError)
        assert issubclass(SqlSyntaxError, SyntaxError)  # backward compatible
        assert issubclass(TranslationError, ReproError)
        assert issubclass(TranslationError, RuntimeError)
        assert issubclass(NoJoinNetworkError, TranslationError)
        assert issubclass(EngineError, ReproError)
        assert issubclass(EngineError, RuntimeError)
        assert issubclass(BudgetExceeded, ReproError)
        assert issubclass(InjectedFault, ReproError)

    def test_syntax_error_carries_parse_diagnostic(self, fig1_translator):
        with pytest.raises(SqlSyntaxError) as exc_info:
            fig1_translator.translate("SELECT name? WHERE ((")
        diagnostic = exc_info.value.diagnostic
        assert diagnostic is not None
        assert diagnostic.stage == "parse"
        assert diagnostic.input_span is not None

    def test_unmappable_tree_names_token_and_stage(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db, TranslatorConfig(kdef=0.0))
        with pytest.raises(TranslationError) as exc_info:
            translator.translate_best("SELECT zzzqqqxxx?.wwwvvv?")
        diagnostic = exc_info.value.diagnostic
        assert diagnostic.stage == "map"
        assert diagnostic.token  # the offending relation tree is named
        assert diagnostic.candidates == len(fig1_db.catalog)

    def test_describe_renders_diagnostic(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db, TranslatorConfig(kdef=0.0))
        with pytest.raises(TranslationError) as exc_info:
            translator.translate_best("SELECT zzzqqqxxx?.wwwvvv?")
        described = exc_info.value.describe()
        assert "stage" in described and "map" in described

    def test_diagnostic_round_trips_to_dict(self):
        diagnostic = Diagnostic(
            stage="network",
            message="ran dry",
            token="rt1",
            candidates=3,
            degradation=("full search abandoned",),
        )
        data = diagnostic.to_dict()
        assert data["stage"] == "network"
        assert data["degradation"] == ["full search abandoned"]
        assert "ran dry" in diagnostic.render()

    def test_translator_records_last_diagnostic_on_failure(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db, TranslatorConfig(kdef=0.0))
        with pytest.raises(TranslationError):
            translator.translate_best("SELECT zzzqqqxxx?.wwwvvv?")
        assert translator.last_diagnostic is not None
        assert translator.last_diagnostic.stage == "map"


# ======================================================================
# fuzz: nothing escapes the ReproError hierarchy
# ======================================================================
GARBAGE = [
    "",
    "   ",
    "?",
    "???",
    "SELECT",
    "SELECT FROM",
    "SELECT * FROM",
    "SELECT * FROM WHERE",
    "SELECT )",
    "((((",
    "'unterminated",
    '"also unterminated',
    "SELECT a? WHERE",
    "UNION UNION",
    "SELECT 1 UNION",
    "WHERE x = 1",
    "SELECT x? FROM , ,",
    "SELECT ?.? WHERE ?.? = ?.?",
    ".explain",
    "SELECT \x00\x01",
    "SELECT name? WHERE name? = ",
    "GROUP BY HAVING",
    "SELECT (SELECT (SELECT",
    "-- just a comment",
]


class TestFuzzTaxonomyIsClosed:
    @pytest.mark.parametrize("text", GARBAGE)
    def test_curated_garbage(self, fig1_translator, text):
        try:
            fig1_translator.translate(text)
        except ReproError:
            pass  # the only acceptable failure mode

    def test_random_garbage(self, fig1_translator):
        rng = random.Random(20140622)
        alphabet = "SELECTFROMWHERE?.,*()'\"= abcxyz0123\n\t;%-"
        for _ in range(150):
            text = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(1, 40))
            )
            try:
                fig1_translator.translate(text)
            except ReproError:
                pass

    def test_random_garbage_under_budget(self, fig1_translator):
        rng = random.Random(7)
        alphabet = "SELECT name? WHERE =ab'x "
        for _ in range(40):
            text = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(1, 30))
            )
            try:
                fig1_translator.translate(
                    text, budget=Budget(deadline=5.0, max_expansions=50)
                )
            except ReproError:
                pass


# ======================================================================
# the acceptance scenario: pathological query, tiny budget
# ======================================================================
class TestPathologicalQuery:
    def test_dense_schema_blank_from_tiny_budget(self):
        db = make_dense_db()
        translator = SchemaFreeTranslator(db)
        budget = Budget(deadline=2.0, max_candidates=40, max_expansions=25)
        best = translator.translate_best(
            "SELECT tag0?, tag5? WHERE tag9? = 't9_0'", budget=budget
        )
        # completed within its deadline by degrading...
        assert not budget.time_exceeded()
        # ...returns a non-empty translation...
        assert best.sql
        assert "tag0" in best.sql and "tag5" in best.sql
        # ...and the diagnostic lists the degradation steps taken
        assert best.is_degraded
        assert best.diagnostic is not None
        assert best.diagnostic.degradation == best.degradation
        assert len(best.degradation) >= 2
        rung = best.diagnostic.message.split("rung: ")[1].rstrip(")")
        assert rung in LADDER and rung != "full"
        # the degraded result still executes
        db.execute(best.query)


# ======================================================================
# CLI: exit codes and REPL survival
# ======================================================================
class TestExitCodes:
    def test_mapping(self):
        assert exit_code_for(None) == EXIT_OK
        assert exit_code_for(SqlSyntaxError("bad", "q", 0)) == EXIT_SYNTAX
        assert exit_code_for(TranslationError("no")) == EXIT_TRANSLATION
        assert exit_code_for(BudgetExceeded("slow")) == EXIT_TRANSLATION
        assert exit_code_for(EngineError("disk")) == EXIT_ENGINE
        assert exit_code_for(ValueError("bug")) == EXIT_INTERNAL

    def test_one_shot_ok(self, capsys):
        assert main(["--dataset", "movies", "--execute", "SELECT 1 + 1"]) == EXIT_OK
        assert "2" in capsys.readouterr().out

    def test_one_shot_syntax_error(self, capsys):
        rc = main(["--dataset", "movies", "--execute", "SELECT name? WHERE (("])
        assert rc == EXIT_SYNTAX
        assert "error" in capsys.readouterr().out


class TestShellResilience:
    def test_translation_error_reported_with_diagnostic(self, fig1_db):
        shell = Shell(fig1_db)
        shell.translator = SchemaFreeTranslator(fig1_db, TranslatorConfig(kdef=0.0))
        out = io.StringIO()
        alive = shell.run_command("SELECT zzzqqqxxx?.wwwvvv?", out=out)
        assert alive is True
        assert "error:" in out.getvalue()
        assert "  | " in out.getvalue()  # diagnostic lines rendered
        assert exit_code_for(shell.last_error) == EXIT_TRANSLATION

    @pytest.mark.parametrize("stage", STAGES)
    def test_shell_survives_injected_stage_failures(self, fig1_db, stage):
        injector = FaultInjector()
        injector.inject_error(stage)
        shell = Shell(fig1_db)
        shell.translator = SchemaFreeTranslator(fig1_db, faults=injector)
        out = io.StringIO()
        alive = shell.run_command(PAPER_QUERY, out=out)
        assert alive is True
        assert "error:" in out.getvalue()
        assert isinstance(shell.last_error, ReproError)
        assert exit_code_for(shell.last_error) == EXIT_TRANSLATION
        # the shell is still usable afterwards
        out = io.StringIO()
        assert shell.run_command("SELECT 1 + 1", out=out) is True
        assert shell.last_error is None

    def test_shell_survives_translator_bug(self, fig1_db, monkeypatch):
        shell = Shell(fig1_db)

        def explode(*args, **kwargs):
            raise RuntimeError("translator bug")

        monkeypatch.setattr(shell.translator, "translate", explode)
        out = io.StringIO()
        alive = shell.run_command("SELECT name?", out=out)
        assert alive is True
        assert "internal error in translation" in out.getvalue()
        assert "keeps running" in out.getvalue()
        assert exit_code_for(shell.last_error) == EXIT_INTERNAL

    def test_shell_survives_engine_bug(self, fig1_db, monkeypatch):
        shell = Shell(fig1_db)

        def explode(query):
            raise ZeroDivisionError("engine bug")

        monkeypatch.setattr(shell.database, "execute", explode)
        out = io.StringIO()
        alive = shell.run_command("SELECT 1 + 1", out=out)
        assert alive is True
        assert "internal error in execution" in out.getvalue()
        assert exit_code_for(shell.last_error) == EXIT_INTERNAL

    def test_shell_reports_engine_error(self, fig1_db, monkeypatch):
        shell = Shell(fig1_db)

        def refuse(query):
            raise EngineError("disk on fire")

        monkeypatch.setattr(shell.database, "execute", refuse)
        out = io.StringIO()
        alive = shell.run_command("SELECT 1 + 1", out=out)
        assert alive is True
        assert "execution error: disk on fire" in out.getvalue()
        assert exit_code_for(shell.last_error) == EXIT_ENGINE

    def test_why_survives_injected_fault(self, fig1_db):
        injector = FaultInjector()
        injector.inject_error("network")
        shell = Shell(fig1_db)
        shell.translator = SchemaFreeTranslator(fig1_db, faults=injector)
        out = io.StringIO()
        alive = shell.run_command(f".why {PAPER_QUERY}", out=out)
        assert alive is True
        assert "error:" in out.getvalue()

    def test_degraded_translation_is_tagged(self, fig1_db, monkeypatch):
        shell = Shell(fig1_db)
        degraded = shell.translator.translate(
            PAPER_QUERY, budget=Budget(max_expansions=1)
        )
        monkeypatch.setattr(
            shell.translator, "translate", lambda *a, **k: degraded
        )
        out = io.StringIO()
        shell.run_command(f".explain {PAPER_QUERY}", out=out)
        assert "[degraded:" in out.getvalue()
