"""Tests for the cross-backend differential correctness harness."""

from __future__ import annotations

import pytest

from repro import Database
from repro.backends import MemoryBackend, SqliteBackend
from repro.datasets import make_course_database, make_movie_database
from repro.engine.io import export_to_sqlite
from repro.testing import DifferentialHarness, workload_pairs
from repro.testing.differential import (
    AGREED_ERROR,
    DIVERGENT,
    EXPECTED,
    MATCH,
    STALE_EXPECTATION,
    TRANSLATION_ERROR,
    normalize_rows,
)
from repro.workloads import (
    COURSE_QUERIES,
    SOPHISTICATED_QUERIES,
    TEXTBOOK_QUERIES,
    WorkloadQuery,
)

from tests.conftest import make_fig1_catalog, populate_fig1


def make_harness(db: Database, **kwargs) -> DifferentialHarness:
    return DifferentialHarness(
        MemoryBackend(db),
        SqliteBackend(export_to_sqlite(db, ":memory:")),
        **kwargs,
    )


@pytest.fixture(scope="module")
def movie_harness() -> DifferentialHarness:
    return make_harness(make_movie_database())


@pytest.fixture()
def fig1_harness() -> DifferentialHarness:
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return make_harness(db)


class TestNormalization:
    def test_bool_date_float_collapse(self):
        import datetime

        rows_a = [(True, datetime.date(2020, 1, 2), 0.1 + 0.2)]
        rows_b = [(1, "2020-01-02", 0.3)]
        assert normalize_rows(rows_a) == normalize_rows(rows_b)

    def test_multiset_not_set(self):
        assert normalize_rows([(1,), (1,)]) != normalize_rows([(1,)])

    def test_order_insensitive(self):
        assert normalize_rows([(1,), (2,)]) == normalize_rows([(2,), (1,)])


class TestWorkloadPairs:
    def test_plain_query_uses_sf_sql(self):
        query = WorkloadQuery(qid="Q1", intent="", gold_sql="GOLD", sf_sql="SF")
        assert workload_pairs([query]) == [("Q1", "SF")]

    def test_missing_sf_sql_falls_back_to_gold(self):
        query = WorkloadQuery(qid="Q2", intent="", gold_sql="GOLD")
        assert workload_pairs([query]) == [("Q2", "GOLD")]

    def test_user_variants_expand(self):
        query = WorkloadQuery(
            qid="S1", intent="", gold_sql="GOLD", user_variants=["A", "B"]
        )
        assert workload_pairs([query]) == [("S1#u1", "A"), ("S1#u2", "B")]


class TestVerdicts:
    def test_match(self, fig1_harness):
        record = fig1_harness.check(
            "q", "SELECT title? WHERE release_year? = 1997"
        )
        assert record.status == MATCH
        assert record.agreed
        assert record.sql_match is True

    def test_agreed_error(self, fig1_harness):
        record = fig1_harness.check("q", "SELECT 1 / 0")
        assert record.status == AGREED_ERROR
        assert record.agreed

    def test_translation_error_is_not_agreement(self, fig1_harness):
        record = fig1_harness.check("q", "SELECT FROM WHERE")
        assert record.status == TRANSLATION_ERROR
        assert not record.agreed

    def test_mixed_type_comparison_diverges(self, fig1_harness):
        # The one known, irreconcilable semantic gap (DESIGN.md §12): the
        # engine raises on mixed-type comparison, SQLite orders across
        # storage classes (INTEGER < TEXT).
        record = fig1_harness.check("q", "SELECT 1 WHERE 1 < 'a'")
        assert record.status == DIVERGENT
        assert not record.agreed
        assert "only memory failed" in record.detail

    def test_expected_divergence_agrees_overall(self, fig1_harness):
        fig1_harness.expectations["q"] = "engine rejects mixed-type compare"
        record = fig1_harness.check("q", "SELECT 1 WHERE 1 < 'a'")
        assert record.status == EXPECTED
        assert record.agreed
        assert record.expected_reason == "engine rejects mixed-type compare"

    def test_stale_expectation_fails(self, fig1_harness):
        fig1_harness.expectations["q"] = "was divergent once"
        record = fig1_harness.check(
            "q", "SELECT title? WHERE release_year? = 1997"
        )
        assert record.status == STALE_EXPECTATION
        assert not record.agreed
        assert "stale" in record.status


class TestReport:
    def test_report_accounting(self, fig1_harness):
        report = fig1_harness.run(
            [
                ("good", "SELECT title? WHERE release_year? = 1997"),
                ("bad", "SELECT 1 WHERE 1 < 'a'"),
            ]
        )
        assert not report.ok
        assert report.summary() == {MATCH: 1, DIVERGENT: 1}
        assert [r.qid for r in report.disagreements] == ["bad"]
        payload = report.as_dict()
        assert payload["total"] == 2
        assert payload["ok"] is False
        assert payload["reference"] == "memory"
        assert payload["candidate"] == "sqlite"
        assert {r["qid"] for r in payload["records"]} == {"good", "bad"}

    def test_run_accepts_workload_queries(self, fig1_harness):
        queries = [
            WorkloadQuery(
                qid="W1",
                intent="",
                gold_sql="SELECT title FROM Movie",
                sf_sql="SELECT title? FROM Movie?",
            )
        ]
        report = fig1_harness.run(queries)
        assert report.ok
        assert report.records[0].qid == "W1"


class TestPaperWorkloads:
    """Acceptance criterion: the harness passes on the paper workloads."""

    def test_textbook_workload_agrees(self, movie_harness):
        report = movie_harness.run(TEXTBOOK_QUERIES)
        assert report.ok, report.summary()
        assert report.summary() == {MATCH: len(TEXTBOOK_QUERIES)}
        assert all(r.sql_match for r in report.records)

    def test_sophisticated_workload_agrees(self, movie_harness):
        report = movie_harness.run(SOPHISTICATED_QUERIES)
        assert report.ok, [r.detail for r in report.disagreements]
        assert report.summary() == {
            MATCH: sum(
                len(q.user_variants) or 1 for q in SOPHISTICATED_QUERIES
            )
        }
        assert all(r.sql_match for r in report.records)

    def test_course_workload_agrees(self):
        report = make_harness(make_course_database()).run(COURSE_QUERIES)
        assert report.ok, report.summary()
        assert report.summary() == {MATCH: len(COURSE_QUERIES)}
        assert all(r.sql_match for r in report.records)
