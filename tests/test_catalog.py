"""Unit tests for the schema catalog."""

import datetime

import pytest

from repro.catalog import (
    Attribute,
    Catalog,
    DataType,
    Relation,
    SchemaError,
    TypeError_,
    coerce,
    infer_type,
    normalize,
)


class TestTypes:
    def test_coerce_null_always_allowed(self):
        for data_type in DataType:
            assert coerce(None, data_type) is None

    def test_coerce_integer(self):
        assert coerce(5, DataType.INTEGER) == 5

    def test_coerce_integer_rejects_bool(self):
        with pytest.raises(TypeError_):
            coerce(True, DataType.INTEGER)

    def test_coerce_integer_rejects_float(self):
        with pytest.raises(TypeError_):
            coerce(1.5, DataType.INTEGER)

    def test_coerce_float_widens_int(self):
        value = coerce(3, DataType.FLOAT)
        assert value == 3.0 and isinstance(value, float)

    def test_coerce_text(self):
        assert coerce("abc", DataType.TEXT) == "abc"

    def test_coerce_text_rejects_number(self):
        with pytest.raises(TypeError_):
            coerce(42, DataType.TEXT)

    def test_coerce_date_from_iso_string(self):
        assert coerce("2014-06-22", DataType.DATE) == datetime.date(2014, 6, 22)

    def test_coerce_date_rejects_garbage(self):
        with pytest.raises(TypeError_):
            coerce("not-a-date", DataType.DATE)

    def test_coerce_boolean(self):
        assert coerce(True, DataType.BOOLEAN) is True

    def test_infer_type(self):
        assert infer_type(1) is DataType.INTEGER
        assert infer_type(1.0) is DataType.FLOAT
        assert infer_type("x") is DataType.TEXT
        assert infer_type(False) is DataType.BOOLEAN
        assert infer_type(datetime.date.today()) is DataType.DATE

    def test_is_numeric(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.TEXT.is_numeric


class TestRelation:
    def test_attributes_in_declaration_order(self):
        relation = Relation(
            "t", [Attribute("b"), Attribute("a"), Attribute("c")]
        )
        assert relation.attribute_names == ["b", "a", "c"]

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("t", [Attribute("a"), Attribute("A")])

    def test_attribute_lookup_case_insensitive(self):
        relation = Relation("t", [Attribute("Name")])
        assert relation.attribute("NAME").name == "Name"
        assert relation.has_attribute("name")

    def test_unknown_attribute_raises(self):
        relation = Relation("t", [Attribute("a")])
        with pytest.raises(SchemaError):
            relation.attribute("missing")

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Relation("t", [Attribute("a")], primary_key=["b"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", [Attribute("a")])


class TestCatalog:
    def make(self) -> Catalog:
        catalog = Catalog("test")
        catalog.create_relation(
            "person",
            [("person_id", DataType.INTEGER), ("name", DataType.TEXT)],
            primary_key=["person_id"],
        )
        catalog.create_relation(
            "movie",
            [("movie_id", DataType.INTEGER), ("title", DataType.TEXT)],
            primary_key=["movie_id"],
        )
        catalog.create_relation(
            "actor",
            [("person_id", DataType.INTEGER), ("movie_id", DataType.INTEGER)],
        )
        return catalog

    def test_duplicate_relation_rejected(self):
        catalog = self.make()
        with pytest.raises(SchemaError):
            catalog.create_relation("PERSON", [("x", DataType.TEXT)])

    def test_relation_lookup_case_insensitive(self):
        catalog = self.make()
        assert catalog.relation("Person").name == "person"
        assert "MOVIE" in catalog

    def test_fk_defaults_to_target_primary_key(self):
        catalog = self.make()
        fk = catalog.add_foreign_key("actor", "person_id", "person")
        assert fk.target_attribute == "person_id"

    def test_fk_requires_single_column_pk_when_implicit(self):
        catalog = self.make()
        catalog.create_relation("nopk", [("a", DataType.INTEGER)])
        catalog.create_relation("src", [("a", DataType.INTEGER)])
        with pytest.raises(SchemaError):
            catalog.add_foreign_key("src", "a", "nopk")

    def test_duplicate_fk_rejected(self):
        catalog = self.make()
        catalog.add_foreign_key("actor", "person_id", "person")
        with pytest.raises(SchemaError):
            catalog.add_foreign_key("actor", "person_id", "person")

    def test_neighbors_are_symmetric(self):
        catalog = self.make()
        catalog.add_foreign_key("actor", "person_id", "person")
        catalog.add_foreign_key("actor", "movie_id", "movie")
        actor_neighbors = {r.name for r in catalog.neighbors("actor")}
        assert actor_neighbors == {"person", "movie"}
        assert {r.name for r in catalog.neighbors("person")} == {"actor"}

    def test_edges_collapse_parallel_fks(self):
        catalog = self.make()
        catalog.add_foreign_key("actor", "person_id", "person")
        catalog.add_foreign_key("actor", "movie_id", "movie")
        assert len(catalog.edges()) == 2

    def test_foreign_keys_between(self):
        catalog = self.make()
        catalog.add_foreign_key("actor", "person_id", "person")
        catalog.add_foreign_key("actor", "movie_id", "movie")
        between = catalog.foreign_keys_between("person", "actor")
        assert len(between) == 1
        assert between[0].source_relation == "actor"

    def test_validate_ok(self):
        catalog = self.make()
        catalog.add_foreign_key("actor", "person_id", "person")
        catalog.validate()

    def test_unknown_relation_raises(self):
        catalog = self.make()
        with pytest.raises(SchemaError):
            catalog.relation("ghost")

    def test_normalize(self):
        assert normalize("FooBar") == "foobar"

    def test_iteration_and_len(self):
        catalog = self.make()
        assert len(catalog) == 3
        assert {r.name for r in catalog} == {"person", "movie", "actor"}
