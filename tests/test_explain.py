"""Tests for the translation explanation API."""

import io

import pytest

from repro.cli import Shell
from repro.core import describe_network, describe_translation

from tests.helpers import PAPER_QUERY


class TestDescribe:
    def test_lists_all_relations(self, fig1_translator):
        best = fig1_translator.translate_best(PAPER_QUERY)
        text = describe_translation(best)
        for relation in ("person", "actor", "director", "movie",
                         "movie_producer", "company"):
            assert relation in text

    def test_tags_mapped_trees(self, fig1_translator):
        best = fig1_translator.translate_best(PAPER_QUERY)
        text = describe_translation(best)
        assert "<- relation tree" in text
        assert "director_name" in text

    def test_shows_edge_weights(self, fig1_translator):
        best = fig1_translator.translate_best(PAPER_QUERY)
        text = describe_translation(best)
        assert "(w=0.910)" in text  # the Example 7 enhanced edge

    def test_constant_query_has_no_network(self, fig1_translator):
        best = fig1_translator.translate_best("SELECT 1 + 1")
        text = describe_translation(best)
        assert "(none" in text

    def test_network_description_shows_views_when_used(self, fig1_db):
        from repro import SchemaFreeTranslator

        translator = SchemaFreeTranslator(fig1_db)
        translator.record_query_log(
            "SELECT p.name FROM Person p, Actor a, Movie m, Director d, "
            "Person p2 WHERE p.person_id = a.person_id "
            "AND a.movie_id = m.movie_id AND m.movie_id = d.movie_id "
            "AND d.person_id = p2.person_id"
        )
        best = translator.translate_best(PAPER_QUERY)
        text = describe_translation(best)
        if best.network is not None and best.network.views:
            assert "via view" in text

    def test_cli_why_command(self, fig1_db):
        shell = Shell(fig1_db)
        out = io.StringIO()
        shell.run_command(
            ".why SELECT title? WHERE director_name? = 'James Cameron'",
            out=out,
        )
        text = out.getvalue()
        assert "interpretation 1" in text
        assert "join network" in text
