"""The context-level network memo: hit/miss counters, invalidation on
data-version bumps and alias registration, LRU bounds, and the
property-based guarantee that memoized generation equals a fresh search.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, SchemaFreeTranslator
from repro.datasets import make_course_database, make_movie_database
from repro.errors import ReproError

from tests.conftest import make_fig1_catalog, populate_fig1

QUERY = "SELECT person?.name? WHERE movie?.title? = 'Titanic'"


def fig1_translator():
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return SchemaFreeTranslator(db), db


def results(translator, query, top_k=3):
    """Translate and normalise to a comparable value; error outcomes are
    part of the contract, so they normalise too instead of failing."""
    try:
        return [
            (t.sql, round(t.weight, 9))
            for t in translator.translate(query, top_k=top_k)
        ]
    except ReproError as exc:
        return type(exc).__name__


class TestMemoCounters:
    def test_repeat_translation_hits_memo(self):
        translator, _ = fig1_translator()
        stats = translator.context.stats
        first = results(translator, QUERY)
        assert stats.network_misses >= 1
        assert stats.network_hits == 0
        misses = stats.network_misses
        second = results(translator, QUERY)
        assert second == first
        assert stats.network_hits >= 1
        assert stats.network_misses == misses

    def test_condition_literal_does_not_split_the_key(self):
        # the memo key captures tree shapes, name evidence, and candidate
        # relations — not condition literals, which only matter after the
        # networks exist
        translator, _ = fig1_translator()
        stats = translator.context.stats
        translator.translate(QUERY, top_k=3)
        hits = stats.network_hits
        translator.translate(
            "SELECT person?.name? WHERE movie?.title? = 'Avatar'", top_k=3
        )
        assert stats.network_hits > hits

    def test_data_version_bump_invalidates(self):
        translator, db = fig1_translator()
        stats = translator.context.stats
        first = results(translator, QUERY)
        misses = stats.network_misses
        db.insert("Person", [99, "Zork Zorkson", "male"])
        again = results(translator, QUERY)
        assert stats.network_misses > misses  # memo was dropped, not hit
        assert [sql for sql, _ in again] == [sql for sql, _ in first]


class TestMemoLRU:
    def test_capacity_and_recency(self):
        translator, _ = fig1_translator()
        context = translator.context
        cap = context._network_memo_cap
        for i in range(cap + 5):
            context.remember_networks(("dummy", i), (None, ()))
        assert len(context._network_memo) == cap
        # keys 0..4 aged out; the newest survive
        assert context.cached_networks(("dummy", 0)) is None
        assert context.cached_networks(("dummy", cap + 4)) is not None
        # a hit refreshes recency: probe 5, insert one more, and the
        # never-probed 6 is evicted instead of 5
        assert context.cached_networks(("dummy", 5)) is not None
        context.remember_networks(("dummy", "extra"), (None, ()))
        assert context.cached_networks(("dummy", 6)) is None
        assert context.cached_networks(("dummy", 5)) is not None


# ---------------------------------------------------------------------------
# Property: memoized generation == fresh generation, also after data changes.
# The databases are module-level so the shared translators accumulate warm
# memos across examples — exactly the state the property is about.
# ---------------------------------------------------------------------------

MOVIE_DB = make_movie_database(scale=0.25)
COURSE_DB = make_course_database(scale=0.25)

MOVIE_POOL = [
    ("movie", "title"),
    ("person", "name"),
    ("genre", "name"),
    ("company", "name"),
    ("country", "name"),
    ("award", "name"),
]
COURSE_POOL = [
    ("department", "name"),
    ("program", "name"),
    ("campus", "name"),
    ("building", "name"),
    ("degree", "name"),
    ("room", "number"),
]

#: relation without outgoing FKs per schema, used to bump data_version
SCHEMAS = {
    "movies": (MOVIE_DB, MOVIE_POOL, "country", ["name", "region"]),
    "courses": (COURSE_DB, COURSE_POOL, "campus", ["name", "city"]),
}

SHARED = {name: SchemaFreeTranslator(db) for name, (db, *_rest) in SCHEMAS.items()}

_pk = itertools.count(10_000_000)


class TestMemoizedEqualsFresh:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_random_terminal_multisets(self, data):
        schema = data.draw(st.sampled_from(sorted(SCHEMAS)))
        db, pool, bump_relation, extra_attrs = SCHEMAS[schema]
        pairs = data.draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=3)
        )
        query = "SELECT " + ", ".join(
            f"{rel}?.{attr}?" for rel, attr in pairs
        )
        shared = SHARED[schema]
        cold = results(shared, query)  # populates (or reuses) the memo
        warm = results(shared, query)  # answered from the memo
        fresh = results(SchemaFreeTranslator(db), query)
        assert cold == warm == fresh
        # mutate the data: the shared translator must re-search and still
        # agree with a translator built after the change
        pk = next(_pk)
        db.insert(bump_relation, [pk] + [f"tmp{pk}" for _ in extra_attrs])
        after_bump = results(shared, query)
        fresh_after = results(SchemaFreeTranslator(db), query)
        assert after_bump == fresh_after
