"""Integrity tests for the synthetic experimental databases."""

import pytest

from repro.datasets import (
    make_course_alt_catalog,
    make_course_alt_database,
    make_course_catalog,
    make_course_database,
    make_course_world,
    make_movie_catalog,
    make_movie_database,
)


@pytest.fixture(scope="module")
def movie_db():
    return make_movie_database()


@pytest.fixture(scope="module")
def world():
    return make_course_world()


@pytest.fixture(scope="module")
def course_db(world):
    return make_course_database(world=world)


@pytest.fixture(scope="module")
def alt_db(world):
    return make_course_alt_database(world=world)


class TestMovieSchema:
    def test_published_shape_43_relations_71_fks(self):
        catalog = make_movie_catalog()
        assert len(catalog) == 43
        assert len(catalog.foreign_keys) == 71

    def test_schema_graph_connected(self):
        catalog = make_movie_catalog()
        edges = catalog.edges()
        nodes = {r.key for r in catalog}
        adjacency = {}
        for a, b in edges:
            adjacency.setdefault(a.lower(), set()).add(b.lower())
            adjacency.setdefault(b.lower(), set()).add(a.lower())
        seen = set()
        stack = [next(iter(nodes))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        assert seen == nodes

    def test_self_referencing_fks_present(self):
        catalog = make_movie_catalog()
        selfs = [
            fk
            for fk in catalog.foreign_keys
            if fk.source_relation.lower() == fk.target_relation.lower()
        ]
        assert len(selfs) == 2  # movie.sequel_of, genre.parent_genre_id

    def test_deterministic_generation(self):
        a = make_movie_database(seed=7)
        b = make_movie_database(seed=7)
        assert a.rows("movie") == b.rows("movie")
        assert a.rows("actor") == b.rows("actor")

    def test_different_seeds_differ(self):
        a = make_movie_database(seed=1)
        b = make_movie_database(seed=2)
        assert a.rows("movie") != b.rows("movie")

    def test_scale_parameter(self):
        small = make_movie_database(scale=0.5)
        large = make_movie_database(scale=2.0)
        assert large.count("movie") > small.count("movie")


class TestMoviePlantedFacts:
    """Every Figure 14 query must have a non-trivial answer."""

    @pytest.mark.parametrize(
        "sql",
        [
            # S1: Cameron + Fox + male actor in 1995-2010
            "SELECT count(*) FROM person pa, actor a, movie m, director d, "
            "person pd, movie_producer mp, company c "
            "WHERE pa.person_id = a.person_id AND a.movie_id = m.movie_id "
            "AND m.movie_id = d.movie_id AND d.person_id = pd.person_id "
            "AND m.movie_id = mp.movie_id AND mp.company_id = c.company_id "
            "AND pa.gender = 'male' AND pd.name = 'James Cameron' "
            "AND c.name = '20th Century Fox' "
            "AND m.release_year BETWEEN 1995 AND 2010",
            # S2: Jackson + Drama
            "SELECT count(*) FROM movie m, movie_genre mg, genre g, "
            "director d, person p WHERE m.movie_id = mg.movie_id "
            "AND mg.genre_id = g.genre_id AND m.movie_id = d.movie_id "
            "AND d.person_id = p.person_id AND g.name = 'Drama' "
            "AND p.name = 'Peter Jackson'",
            # S3: Carthago/Apollo/Jaziri
            "SELECT count(*) FROM movie m, movie_producer mp, company cp, "
            "movie_distributor md, company cd, director d, person p "
            "WHERE m.movie_id = mp.movie_id "
            "AND mp.company_id = cp.company_id AND m.movie_id = md.movie_id "
            "AND md.company_id = cd.company_id AND m.movie_id = d.movie_id "
            "AND d.person_id = p.person_id AND cp.name = 'Carthago Films' "
            "AND cd.name = 'Apollo Films' AND p.name = 'Fahdel Jaziri'",
        ],
    )
    def test_planted_fact_queries_nonempty(self, movie_db, sql):
        assert movie_db.execute(sql).scalar() > 0

    def test_notable_people_exist(self, movie_db):
        names = set(movie_db.column_values("person", "name"))
        for name in ("James Cameron", "Tom Hanks", "Woody Allen"):
            assert name in names


class TestCourseSchemas:
    def test_courserank_like_shape(self):
        assert len(make_course_catalog()) == 53

    def test_alternative_shape(self):
        assert len(make_course_alt_catalog()) == 21

    def test_all_relations_populated(self, course_db):
        empty = [
            r.name for r in course_db.catalog if course_db.count(r.name) == 0
        ]
        assert empty == []

    def test_alt_relations_populated(self, alt_db):
        empty = [r.name for r in alt_db.catalog if alt_db.count(r.name) == 0]
        assert empty == []

    def test_same_world_same_answers(self, course_db, alt_db):
        full = course_db.execute(
            "SELECT count(*) FROM student s, enrollment e "
            "WHERE s.student_id = e.student_id"
        ).scalar()
        compact = alt_db.execute(
            "SELECT count(*) FROM student s, enrollment e "
            "WHERE s.student_id = e.student_id"
        ).scalar()
        assert full == compact

    def test_grades_consistent_across_schemas(self, course_db, alt_db):
        full = sorted(
            course_db.execute(
                "SELECT g.letter FROM completed co, grade_scale g, student s "
                "WHERE co.grade_id = g.grade_id "
                "AND co.student_id = s.student_id "
                "AND s.name = 'Dan Haddad 1'"
            ).rows
        )
        compact = sorted(
            alt_db.execute(
                "SELECT t.grade_letter FROM transcript t, student s "
                "WHERE t.student_id = s.student_id "
                "AND s.name = 'Dan Haddad 1'"
            ).rows
        )
        assert full == compact

    def test_world_determinism(self):
        a = make_course_world(seed=5)
        b = make_course_world(seed=5)
        assert a.sections == b.sections
        assert a.enrollments == b.enrollments

    def test_fk_spot_check(self, course_db):
        # every enrollment points at an existing student and section
        students = {r["student_id"] for r in course_db.rows("student")}
        sections = {r["section_id"] for r in course_db.rows("section")}
        for row in course_db.rows("enrollment"):
            assert row["student_id"] in students
            assert row["section_id"] in sections
