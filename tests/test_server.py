"""Tests for the supervised multi-process serving layer.

The chaos scenarios (kill -9 mid-request, hung worker, deaf worker,
restart-budget exhaustion) are deterministic: the supervisor runs with
``auto_watchdog=False`` on a pure-virtual clock, so every timeout and
backoff decision happens exactly when the test advances the clock and
calls :meth:`Supervisor.tick` — no sleeps racing wall time.  The worker
processes themselves are real (``spawn``), as is the ``kill -9``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time

import pytest

from repro.cli import (
    DATASETS,
    EXIT_BACKEND,
    EXIT_TRANSLATION,
    EXIT_WORKER,
    exit_code_for,
)
from repro.errors import Diagnostic, ReproError
from repro.server import (
    DatabaseSpec,
    FrameError,
    ServerDraining,
    Supervisor,
    SupervisorConfig,
    WorkerCrashed,
    WorkerTimeout,
    decode_error,
    decode_frame,
    encode_error,
    encode_frame,
)
from repro.server.http import ServerApp, _handle_connection, _status_for
from repro.service import BreakerConfig, ServiceConfig, ServiceOverloaded
from repro.service import QueryService
from repro.testing import FaultInjector, VirtualClock

CAMERON = "SELECT name? WHERE director_name? = 'James Cameron'"
HANKS = "SELECT title? WHERE actor?.name? = 'Tom Hanks'"
WORKLOAD = [CAMERON, HANKS, CAMERON]

MOVIES = DatabaseSpec(kind="dataset", target="movies")


def make_supervisor(databases=None, clock=None, **overrides):
    """A deterministic supervisor: manual watchdog, virtual clock."""
    defaults = dict(
        workers_per_shard=1,
        chaos_hooks=True,
        auto_watchdog=False,
        restart_backoff_base=0.05,
        restart_backoff_cap=0.2,
        request_timeout=5.0,
        heartbeat_interval=1.0,
        heartbeat_timeout=5.0,
    )
    defaults.update(overrides)
    clock = clock or VirtualClock(origin=None)
    supervisor = Supervisor(
        databases or {"movies": MOVIES},
        SupervisorConfig(**defaults),
        clock=clock,
    )
    return supervisor, clock


def wait_ready(supervisor, shard="movies", timeout=60.0):
    """Real-time wait for the shard to have a live ready worker."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = supervisor.readiness()["shards"][shard]
        if state["workers"]["live"] >= 1:
            return
        time.sleep(0.02)
    raise AssertionError(f"shard {shard} never became ready again")


def restart_and_wait(supervisor, clock, shard="movies"):
    """Advance past the backoff, spawn the replacement, await ready."""
    clock.advance(1.0)
    supervisor.tick()
    wait_ready(supervisor, shard)


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------


class TestFrames:
    def test_roundtrip(self):
        frame = {"op": "query", "id": 7, "query": CAMERON, "top_k": 2}
        assert decode_frame(encode_frame(frame)) == frame

    def test_truncated_frame_fails_typed(self):
        with pytest.raises(FrameError):
            decode_frame(b"\x00\x00")

    def test_length_mismatch_fails_typed(self):
        data = bytearray(encode_frame({"op": "ping"}))
        data[3] += 1  # lie about the length
        with pytest.raises(FrameError):
            decode_frame(bytes(data))

    def test_oversized_length_prefix_fails_before_allocating(self):
        with pytest.raises(FrameError):
            decode_frame(b"\xff\xff\xff\xff" + b"x" * 8)

    def test_non_object_payload_fails_typed(self):
        body = json.dumps([1, 2]).encode()
        data = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            decode_frame(data)

    def test_missing_op_fails_typed(self):
        body = json.dumps({"id": 1}).encode()
        data = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            decode_frame(data)


class TestErrorWire:
    def test_typed_error_roundtrips_with_diagnostic(self):
        error = WorkerCrashed(
            "worker died",
            diagnostic=Diagnostic(
                stage="backend",
                message="boom",
                detail={"pid": 123},
            ),
        )
        decoded = decode_error(encode_error(error))
        assert isinstance(decoded, WorkerCrashed)
        assert str(decoded) == "worker died"
        assert decoded.diagnostic.stage == "backend"
        assert decoded.diagnostic.detail["pid"] == 123

    def test_unknown_type_falls_back_to_repro_error(self):
        decoded = decode_error({"type": "NoSuchError", "message": "m"})
        assert type(decoded) is ReproError
        assert str(decoded) == "m"

    def test_none_stays_none(self):
        assert decode_error(None) is None


# ---------------------------------------------------------------------------
# virtual clock sharing (satellite: one timeline across components)
# ---------------------------------------------------------------------------


class TestVirtualClockSharing:
    def test_injector_advances_are_visible_to_other_components(self):
        clock = VirtualClock(origin=None)
        injector = FaultInjector(clock=clock)
        assert clock.now() == 0.0
        injector.advance(2.5)
        assert clock.now() == 2.5
        clock.advance(0.5)
        assert injector.clock() == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(origin=None).advance(-1.0)

    def test_supervisor_accepts_shared_clock(self):
        clock = VirtualClock(origin=None)
        supervisor, _ = make_supervisor(clock=clock)
        assert supervisor.clock is clock.now or supervisor.clock() == 0.0


# ---------------------------------------------------------------------------
# exit codes and http status mapping
# ---------------------------------------------------------------------------


class TestFailureMapping:
    def test_worker_errors_exit_8(self):
        assert exit_code_for(WorkerCrashed("x")) == EXIT_WORKER == 8
        assert exit_code_for(WorkerTimeout("x")) == EXIT_WORKER

    def test_worker_errors_outrank_generic_translation(self):
        assert exit_code_for(ReproError("x")) == EXIT_TRANSLATION
        assert exit_code_for(WorkerCrashed("x")) != EXIT_TRANSLATION
        assert exit_code_for(WorkerCrashed("x")) != EXIT_BACKEND

    def test_http_status_mapping(self):
        assert _status_for(None) == 200
        assert _status_for(ServerDraining("d")) == 503
        assert _status_for(ServiceOverloaded("s")) == 429
        assert _status_for(WorkerCrashed("c")) == 500
        assert _status_for(WorkerTimeout("t")) == 500
        assert _status_for(ReproError("r")) == 400
        assert _status_for(RuntimeError("x")) == 500


class TestDatabaseSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DatabaseSpec(kind="oracle", target="x")

    def test_unknown_dataset_rejected_at_build(self):
        from repro.server import build_backend

        with pytest.raises(ValueError):
            build_backend(DatabaseSpec(kind="dataset", target="nope"))


# ---------------------------------------------------------------------------
# the supervisor, end to end (real worker processes)
# ---------------------------------------------------------------------------


class TestSupervisorServing:
    def test_serves_and_matches_in_process_baseline(self):
        supervisor, _ = make_supervisor()
        with supervisor:
            responses = supervisor.run(WORKLOAD, database="movies")
            snapshot = supervisor.snapshot()
        with QueryService(
            DATASETS["movies"](), ServiceConfig(workers=1)
        ) as service:
            baseline = service.run(WORKLOAD)
        assert [r.sql for r in responses] == [b.sql for b in baseline]
        assert all(r.worker_pid is not None for r in responses)
        assert snapshot["stats"]["submitted"] == len(WORKLOAD)
        assert snapshot["shards"]["movies"]["breaker"]["state"] == "closed"

    def test_unknown_database_raises_key_error(self):
        supervisor, _ = make_supervisor()
        with supervisor:
            with pytest.raises(KeyError):
                supervisor.submit(CAMERON, database="nope")

    def test_queue_overflow_sheds_typed(self):
        supervisor, _ = make_supervisor(queue_limit=0)
        with supervisor:
            blocker = supervisor.submit("%sleep:0.4", database="movies")
            shed = supervisor.submit(CAMERON, database="movies").result(
                timeout=30
            )
            assert isinstance(shed.error, ServiceOverloaded)
            assert shed.shed and shed.outcome == "shed"
            assert blocker.result(timeout=30).ok


class TestCrashIsolation:
    def test_kill9_mid_request_typed_failure_restart_byte_identical(self):
        supervisor, clock = make_supervisor()
        with supervisor:
            before = supervisor.run(WORKLOAD, database="movies")
            victim = supervisor.worker_pids("movies")[0]
            future = supervisor.submit("%sleep:30", database="movies")
            os.kill(victim, signal.SIGKILL)  # the actual kill -9
            failed = future.result(timeout=30)
            assert not failed.ok
            assert isinstance(failed.error, WorkerCrashed)
            assert failed.error.diagnostic.detail["shard"] == "movies"
            assert exit_code_for(failed.error) == EXIT_WORKER
            assert ("crash", "movies", victim) in supervisor.events
            # the restart obeys the backoff budget and the replacement
            # serves the same workload byte-identically
            restart_and_wait(supervisor, clock)
            assert supervisor.stats.restarts == 1
            replacement = supervisor.worker_pids("movies")[0]
            assert replacement != victim
            after = supervisor.run(WORKLOAD, database="movies")
        assert [r.sql for r in after] == [r.sql for r in before]
        assert all(r.ok for r in after)

    def test_crash_directive_is_indistinguishable_from_real_crash(self):
        supervisor, clock = make_supervisor()
        with supervisor:
            response = supervisor.submit("%crash", database="movies").result(
                timeout=30
            )
            assert isinstance(response.error, WorkerCrashed)
            assert supervisor.stats.crashed == 1
            restart_and_wait(supervisor, clock)
            assert supervisor.run([CAMERON], database="movies")[0].ok

    def test_crash_in_one_shard_leaves_other_serving(self):
        supervisor, clock = make_supervisor(
            databases={
                "movies": MOVIES,
                "courses": DatabaseSpec(kind="dataset", target="courses"),
            }
        )
        with supervisor:
            crash = supervisor.submit("%crash", database="movies").result(
                timeout=30
            )
            assert isinstance(crash.error, WorkerCrashed)
            readiness = supervisor.readiness()
            assert readiness["shards"]["courses"]["ready"]
            assert not readiness["shards"]["movies"]["ready"]
            ok = supervisor.submit(
                "SELECT title? WHERE dept_name? = 'CS'", database="courses"
            ).result(timeout=30)
            assert ok.error is None or not isinstance(
                ok.error, WorkerCrashed
            )


class TestWatchdog:
    def test_hung_worker_killed_after_request_timeout(self):
        supervisor, clock = make_supervisor(request_timeout=5.0)
        with supervisor:
            future = supervisor.submit("%hang", database="movies")
            clock.advance(4.9)
            supervisor.tick()
            assert not future.done()  # inside the timeout: left alone
            clock.advance(0.2)
            supervisor.tick()
            failed = future.result(timeout=30)
            assert isinstance(failed.error, WorkerTimeout)
            assert "request timeout" in str(failed.error)
            assert supervisor.stats.timed_out == 1
            restart_and_wait(supervisor, clock)
            assert supervisor.run([CAMERON], database="movies")[0].ok

    def test_deaf_idle_worker_killed_by_heartbeat(self):
        supervisor, clock = make_supervisor(
            heartbeat_interval=1.0, heartbeat_timeout=5.0
        )
        with supervisor:
            assert supervisor.submit("%deaf", database="movies").result(
                timeout=30
            ).ok
            clock.advance(1.1)
            supervisor.tick()  # sends the ping the deaf worker ignores
            assert supervisor.stats.pings == 1
            clock.advance(5.1)
            supervisor.tick()  # no pong inside the timeout: killed
            assert supervisor.stats.timed_out == 1
            assert any(e[0] == "timeout" for e in supervisor.events)
            restart_and_wait(supervisor, clock)
            assert supervisor.run([CAMERON], database="movies")[0].ok

    def test_healthy_idle_worker_answers_pings_and_survives(self):
        supervisor, clock = make_supervisor()
        with supervisor:
            assert supervisor.run([CAMERON], database="movies")[0].ok
            for _ in range(3):
                clock.advance(1.1)
                supervisor.tick()
                # real wait for the pong to come back before judging
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    with supervisor._lock:
                        worker = supervisor._shards["movies"].workers[0]
                        if worker.ping_id is None:
                            break
                    time.sleep(0.01)
            assert supervisor.stats.pings == 3
            assert supervisor.stats.timed_out == 0
            assert supervisor.run([CAMERON], database="movies")[0].ok


class TestRestartBudget:
    def test_budget_trip_pins_rung_then_marks_shard_down(self):
        supervisor, clock = make_supervisor(
            max_restarts=2,
            restart_window=60.0,
            breaker=BreakerConfig(
                failure_threshold=2, cooldown=120.0, pinned_rung="greedy"
            ),
        )
        with supervisor:
            for expected_restarts in (1, 2):
                crash = supervisor.submit(
                    "%crash", database="movies"
                ).result(timeout=30)
                assert isinstance(crash.error, WorkerCrashed)
                restart_and_wait(supervisor, clock)
                assert supervisor.stats.restarts == expected_restarts
            # two crashes tripped the shard breaker: degraded mode —
            # requests now dispatch pinned to the breaker's rung
            assert supervisor.breaker("movies").state == "open"
            pinned = supervisor.run([CAMERON], database="movies")[0]
            assert pinned.ok
            assert pinned.rung == "greedy"
            assert pinned.shard_breaker_state == "open"
            # the third crash exceeds max_restarts: the shard goes down
            crash = supervisor.submit("%crash", database="movies").result(
                timeout=30
            )
            assert isinstance(crash.error, WorkerCrashed)
            clock.advance(1.0)
            supervisor.tick()
            assert ("shard-down", "movies") in supervisor.events
            readiness = supervisor.readiness()
            assert readiness["shards"]["movies"]["down"]
            assert not readiness["shards"]["movies"]["ready"]
            # fail-fast: no queueing into a dead shard
            fast = supervisor.submit(CAMERON, database="movies").result(
                timeout=5
            )
            assert isinstance(fast.error, WorkerCrashed)
            assert "down" in str(fast.error)


class TestDrain:
    def test_drain_completes_admitted_work_and_refuses_new(self):
        supervisor, _ = make_supervisor(queue_limit=8)
        with supervisor:
            admitted = [
                supervisor.submit("%sleep:0.3", database="movies")
            ] + [
                supervisor.submit(q, database="movies") for q in WORKLOAD
            ]
            result_box = {}
            drainer = threading.Thread(
                target=lambda: result_box.update(supervisor.drain())
            )
            drainer.start()
            while not supervisor.draining:
                time.sleep(0.005)
            refused = supervisor.submit(CAMERON, database="movies").result(
                timeout=5
            )
            assert isinstance(refused.error, ServerDraining)
            drainer.join(timeout=60)
            assert not drainer.is_alive()
            # zero admitted requests lost: every future resolved, served
            for future in admitted:
                response = future.result(timeout=1)
                assert response.ok, response.error
            assert result_box["drain_seconds"] >= 0.0
            assert result_box["stats"]["refused"] == 1
            assert supervisor.closed
        # close() after drain() is an idempotent no-op
        supervisor.close()

    def test_snapshot_is_json_serialisable(self):
        supervisor, _ = make_supervisor()
        with supervisor:
            supervisor.run([CAMERON], database="movies")
            snapshot = supervisor.drain()
        json.dumps(snapshot)  # must not raise


# ---------------------------------------------------------------------------
# the asyncio HTTP front end
# ---------------------------------------------------------------------------


def _run(coro):
    return asyncio.run(coro)


class TestHttpApp:
    def test_routes_and_drain_over_real_sockets(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        clock = VirtualClock(origin=None)
        supervisor = Supervisor(
            {"movies": MOVIES},
            SupervisorConfig(
                workers_per_shard=1, chaos_hooks=True, auto_watchdog=False
            ),
            clock=clock,
            metrics=registry,
        )
        supervisor.start()

        async def scenario():
            app = ServerApp(supervisor)
            server = await asyncio.start_server(
                lambda r, w: _handle_connection(app, r, w),
                host="127.0.0.1",
                port=0,
            )
            port = server.sockets[0].getsockname()[1]

            async def request(method, path, body=None):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                payload = b"" if body is None else json.dumps(body).encode()
                writer.write(
                    (
                        f"{method} {path} HTTP/1.1\r\n"
                        f"Host: t\r\nContent-Length: {len(payload)}\r\n"
                        "\r\n"
                    ).encode()
                    + payload
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                head, _, rest = raw.partition(b"\r\n\r\n")
                status = int(head.split()[1])
                return status, rest

            status, _ = await request("GET", "/healthz")
            assert status == 200
            status, body = await request("GET", "/readyz")
            assert status == 200 and json.loads(body)["ready"]
            status, body = await request(
                "POST",
                "/query",
                {"query": CAMERON, "database": "movies"},
            )
            doc = json.loads(body)
            assert status == 200 and doc["outcome"] == "ok"
            assert doc["sql"].startswith("SELECT")
            status, _ = await request("GET", "/metrics")
            assert status == 200
            status, _ = await request("GET", "/nope")
            assert status == 404
            status, _ = await request("POST", "/query", {"no": "query"})
            assert status == 400
            status, _ = await request(
                "POST", "/query", {"query": CAMERON, "database": "nope"}
            )
            assert status == 404

            # graceful drain: readyz flips 503, queries refuse 503,
            # the final snapshot arrives
            app.begin_drain()
            snapshot = await asyncio.wait_for(app.wait_drained(), timeout=60)
            assert snapshot["stats"]["completed"] >= 1
            status, body = await request("GET", "/readyz")
            assert status == 503
            assert json.loads(body)["draining"]
            server.close()
            await server.wait_closed()

        try:
            _run(scenario())
        finally:
            supervisor.close()

    def test_query_returns_500_for_worker_crash(self):
        supervisor, clock = make_supervisor()
        supervisor.start()

        async def scenario():
            app = ServerApp(supervisor)
            status, _, body = await app.dispatch(
                "POST",
                "/query",
                json.dumps(
                    {"query": "%crash", "database": "movies"}
                ).encode(),
            )
            doc = json.loads(body)
            assert status == 500
            assert doc["error_type"] == "WorkerCrashed"

        try:
            _run(scenario())
        finally:
            supervisor.close()


class TestPipelining:
    """Pipelined dispatch and frame coalescing under backlog."""

    def test_concurrent_batch_matches_sequential(self):
        supervisor, _ = make_supervisor(queue_limit=64)
        with supervisor:
            sequential = [
                supervisor.submit(q, database="movies").result(timeout=60)
                for q in WORKLOAD * 4
            ]
            futures = [
                supervisor.submit(q, database="movies")
                for q in WORKLOAD * 4
            ]
            batched = [f.result(timeout=60) for f in futures]
        for a, b in zip(sequential, batched):
            assert (a.sql, a.outcome) == (b.sql, b.outcome)

    def test_crash_fails_every_pipelined_request_typed(self):
        supervisor, clock = make_supervisor(queue_limit=64)
        with supervisor:
            victim = supervisor.worker_pids("movies")[0]
            # first request parks the worker; the rest ride the pipe
            futures = [supervisor.submit("%sleep:30", database="movies")]
            futures += [
                supervisor.submit(CAMERON, database="movies")
                for _ in range(4)
            ]
            os.kill(victim, signal.SIGKILL)
            resolved = [f.result(timeout=60) for f in futures]
            inflight_failures = [
                r for r in resolved
                if isinstance(r.error, WorkerCrashed)
            ]
            # the sleeper died in flight; pipelined riders either died
            # with it or were still queued and served by the restart
            assert inflight_failures
            assert all(
                r.ok or isinstance(r.error, WorkerCrashed)
                for r in resolved
            )
            assert supervisor.stats.crashed == 1

    def test_depth_one_is_strict_lockstep(self):
        supervisor, _ = make_supervisor(queue_limit=64, pipeline_depth=1)
        with supervisor:
            responses = supervisor.run(WORKLOAD * 2, database="movies")
        assert all(r.ok for r in responses)
        baseline, _ = make_supervisor(queue_limit=64)
        with baseline:
            expected = baseline.run(WORKLOAD * 2, database="movies")
        assert [r.sql for r in responses] == [r.sql for r in expected]
