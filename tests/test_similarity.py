"""Unit tests for the similarity framework (paper §4)."""

import pytest

from repro import Catalog, Database, DataType
from repro.core import TranslatorConfig
from repro.core.relation_tree import build_relation_trees
from repro.core.similarity import (
    ConditionChecker,
    SimilarityEvaluator,
    qgrams,
    stride_sample,
    string_similarity,
)
from repro.core.triples import extract
from repro.sqlkit import ast, parse


def trees_for(sql):
    return build_relation_trees(extract(parse(sql)))


@pytest.fixture()
def sim(fig1_db):
    return SimilarityEvaluator(fig1_db)


class TestStringSimilarity:
    def test_identical_is_one(self):
        assert string_similarity("actor", "Actor") == 1.0

    def test_disjoint_is_zero(self):
        assert string_similarity("zzz", "qqq") == 0.0

    def test_symmetry(self):
        a = string_similarity("director_name", "director")
        b = string_similarity("director", "director_name")
        assert a == b

    def test_partial_overlap_in_unit_interval(self):
        value = string_similarity("produce_company", "company")
        assert 0.0 < value < 1.0

    def test_empty_string(self):
        assert string_similarity("", "abc") == 0.0

    def test_qgram_padding(self):
        grams = qgrams("ab", 3)
        assert "##a" in grams and "ab#" in grams

    def test_similar_beats_dissimilar(self):
        assert string_similarity("director", "directors") > string_similarity(
            "director", "company"
        )

    def test_symmetry_survives_mixed_case(self):
        # the cache key is canonicalised (lower-cased, ordered), so the
        # asymmetric-argument cache-poisoning bug cannot recur
        a = string_similarity("Produce_Company", "company")
        b = string_similarity("COMPANY", "produce_company")
        assert a == b > 0.0


class TestStrideSampling:
    def test_small_input_kept_whole(self):
        assert stride_sample([1, 2, 3], 10) == [1, 2, 3]

    def test_sample_spans_whole_sequence(self):
        sample = stride_sample(list(range(100)), 10)
        assert len(sample) == 10
        # evidence must come from the whole column, not its first rows
        assert max(sample) >= 90
        assert sample == sorted(sample)  # deterministic, order-preserving

    def test_zero_limit_means_unlimited(self):
        assert stride_sample(list(range(5)), 0) == [0, 1, 2, 3, 4]

    def test_late_tuples_can_satisfy_conditions(self):
        # regression: sampling the first condition_sample distinct values
        # misclassified conditions satisfied only by late-inserted tuples
        catalog = Catalog("late")
        catalog.create_relation(
            "person",
            [("person_id", DataType.INTEGER), ("name", DataType.TEXT)],
            primary_key=["person_id"],
        )
        db = Database(catalog)
        for i in range(60):
            db.insert("person", [i, "needle" if i == 54 else f"filler_{i:03d}"])
        checker = ConditionChecker(db, TranslatorConfig(condition_sample=10))
        trees = build_relation_trees(
            extract(parse("SELECT x WHERE name? = 'needle'"))
        )
        tree = next(t for t in trees if t.key == ("attr", "name"))
        condition = tree.attribute_trees[0].conditions[0]
        person = db.catalog.relation("person")
        assert checker.status(condition, person, person.attribute("name")) == (
            "satisfied"
        )


class TestRootLevel:
    def test_exact_name_scores_one(self, sim, fig1_db):
        tree = trees_for("SELECT actor?.name?")[0]
        assert sim.root_similarity(tree, fig1_db.catalog.relation("Actor")) == 1.0

    def test_neighbor_similarity_damped(self, sim, fig1_db):
        # paper Example 4: rt with root actor? scores kref against Person
        tree = trees_for("SELECT actor?.name?")[0]
        person = fig1_db.catalog.relation("Person")
        assert sim.root_similarity(tree, person) == pytest.approx(0.7)

    def test_unspecified_root_uses_kdef_floor(self, sim, fig1_db):
        tree = trees_for("SELECT a WHERE zzzqqq? = 1")[0]
        company = fig1_db.catalog.relation("Company")
        assert sim.root_similarity(tree, company) >= 0.3

    def test_unspecified_root_attribute_fallback(self, sim, fig1_db):
        # director_name has no root, but the attribute name resembles the
        # Director relation, which neighbours Person
        tree = trees_for("SELECT a WHERE director_name? = 'X'")
        dn_tree = next(t for t in tree if t.key == ("attr", "director_name"))
        person = fig1_db.catalog.relation("Person")
        assert sim.root_similarity(dn_tree, person) > 0.3


class TestAttributeLevel:
    def test_exact_attribute_maps_to_itself(self, sim, fig1_db):
        tree = trees_for("SELECT actor?.gender?")[0]
        person = fig1_db.catalog.relation("Person")
        score, attr = sim.attribute_similarity(
            tree.attribute_trees[0], person
        )
        assert attr == "gender" and score > 0.9

    def test_condition_satisfaction_boosts(self, sim, fig1_db):
        # 'male' occurs in Person.gender, so the condition factor is
        # (1+1)/(1+1)=1 there, and (0+1)/(1+1)=1/2 elsewhere
        trees = trees_for("SELECT x WHERE gender? = 'male'")
        tree = next(t for t in trees if t.key == ("attr", "gender"))
        person = fig1_db.catalog.relation("Person")
        score, attr = sim.attribute_similarity(tree.attribute_trees[0], person)
        assert attr == "gender"

    def test_type_incompatible_condition_penalised(self, sim, fig1_db):
        # a text constant can never satisfy the integer company_id column
        trees = trees_for("SELECT x WHERE produce_company? = '20th Century Fox'")
        tree = trees[-1]
        company = fig1_db.catalog.relation("Company")
        score, attr = sim.attribute_similarity(tree.attribute_trees[0], company)
        assert attr == "name"

    def test_numeric_range_prefers_numeric_column(self, sim, fig1_db):
        trees = trees_for("SELECT x WHERE year? > 1995 AND year? < 2005")
        tree = next(t for t in trees if t.key == ("attr", "year"))
        movie = fig1_db.catalog.relation("Movie")
        score, attr = sim.attribute_similarity(tree.attribute_trees[0], movie)
        assert attr == "release_year"


class TestTreeLevel:
    def test_paper_rt1_prefers_person(self, sim, fig1_db):
        tree = trees_for(
            "SELECT count(actor?.name?) WHERE actor?.gender? = 'male'"
        )[0]
        person_score, _ = sim.tree_similarity(
            tree, fig1_db.catalog.relation("Person")
        )
        actor_score, _ = sim.tree_similarity(
            tree, fig1_db.catalog.relation("Actor")
        )
        # Actor has no name/gender columns, so Person must win despite the
        # root name matching Actor exactly (paper §4.1's product form)
        assert person_score > actor_score

    def test_attribute_map_recorded(self, sim, fig1_db):
        tree = trees_for("SELECT actor?.name?, actor?.gender?")[0]
        _, attribute_map = sim.tree_similarity(
            tree, fig1_db.catalog.relation("Person")
        )
        assert set(attribute_map.values()) == {"name", "gender"}


class TestConditionChecker:
    def test_satisfied_memoised(self, sim, fig1_db):
        trees = trees_for("SELECT x WHERE gender? = 'male'")
        tree = next(t for t in trees if t.key == ("attr", "gender"))
        condition = tree.attribute_trees[0].conditions[0]
        person = fig1_db.catalog.relation("Person")
        gender = person.attribute("gender")
        first = sim.checker.satisfied(condition, person, gender)
        second = sim.checker.satisfied(condition, person, gender)
        assert first is True and second is True

    def test_incompatible_status(self, sim, fig1_db):
        trees = trees_for("SELECT x WHERE name? = 'Tom Hanks'")
        tree = next(t for t in trees if t.key == ("attr", "name"))
        condition = tree.attribute_trees[0].conditions[0]
        person = fig1_db.catalog.relation("Person")
        assert (
            sim.checker.status(condition, person, person.attribute("person_id"))
            == "incompatible"
        )
        assert (
            sim.checker.status(condition, person, person.attribute("name"))
            == "satisfied"
        )

    def test_unsatisfied_status(self, sim, fig1_db):
        trees = trees_for("SELECT x WHERE name? = 'Nobody Here'")
        tree = next(t for t in trees if t.key == ("attr", "name"))
        condition = tree.attribute_trees[0].conditions[0]
        person = fig1_db.catalog.relation("Person")
        assert (
            sim.checker.status(condition, person, person.attribute("name"))
            == "unsatisfied"
        )
