"""Tests for view weight management (the paper's §5.2 future-work item)."""

import pytest

from repro.core import SchemaFreeTranslator, TranslatorConfig, View, ViewJoin
from repro.core.query_log import QueryLog

from tests.helpers import FIG5_VIEW, make_xgraph

LOG_SQL = (
    "SELECT p.name FROM Person p, Director d "
    "WHERE p.person_id = d.person_id"
)


class TestViewStrength:
    def test_default_strength_reproduces_definition5_sqrt(self, fig1_db):
        import math

        xgraph, _, _ = make_xgraph(fig1_db, views=[FIG5_VIEW])
        instance = xgraph.view_instances[0]
        product = math.prod(e.weight for e in instance.edges)
        assert instance.weight == pytest.approx(math.sqrt(product))

    def test_stronger_view_weighs_more(self, fig1_db):
        import dataclasses

        strong = dataclasses.replace(FIG5_VIEW, strength=3.0)
        weak_graph, _, _ = make_xgraph(fig1_db, views=[FIG5_VIEW])
        strong_graph, _, _ = make_xgraph(fig1_db, views=[strong])
        assert (
            strong_graph.view_instances[0].weight
            > weak_graph.view_instances[0].weight
        )

    def test_signature_ignores_name(self):
        a = View("a", ("X",), (), strength=1.0)
        b = View("b", ("X",), ())
        assert a.signature == b.signature


class TestFrequencyWeighting:
    def test_repeated_pattern_counted_not_duplicated(self, fig1_db):
        log = QueryLog(fig1_db.catalog)
        log.record(LOG_SQL)
        log.record(LOG_SQL)
        log.record(LOG_SQL)
        assert len(log.views) == 1
        view = log.views[0]
        assert log.frequency(view) == 3

    def test_strength_grows_with_frequency(self, fig1_db):
        log = QueryLog(fig1_db.catalog)
        first = log.record(LOG_SQL)[0]
        assert first.strength == pytest.approx(1.0)
        log.record(LOG_SQL)
        second = log.views[0]
        assert second.strength > first.strength

    def test_strength_capped(self, fig1_db):
        log = QueryLog(fig1_db.catalog)
        for _ in range(50):
            log.record(LOG_SQL)
        assert log.views[0].strength <= 3.0

    def test_translator_view_graph_stays_deduplicated(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db)
        translator.record_query_log(LOG_SQL)
        translator.record_query_log(LOG_SQL)
        log_views = [
            v for v in translator.view_graph.views if v.source == "log"
        ]
        assert len(log_views) == 1

    def test_static_views_survive_log_rebuild(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db, views=[FIG5_VIEW])
        translator.record_query_log(LOG_SQL)
        names = {v.name for v in translator.view_graph.views}
        assert FIG5_VIEW.name in names

    def test_user_fragment_views_get_high_strength(self, fig1_db):
        # translate a query with an explicit join fragment and confirm it
        # still translates (the strength path is exercised end to end)
        translator = SchemaFreeTranslator(fig1_db)
        best = translator.translate_best(
            "SELECT person?.name? "
            "WHERE person?.person_id? = director?.person_id? "
            "AND movie?.title? = 'Titanic'"
        )
        assert fig1_db.execute(best.query).rows == [("James Cameron",)]
