"""Unit tests for the Database facade: integrity checks and access."""

import pytest

from repro import Catalog, Database, DataType
from repro.catalog import Attribute
from repro.engine import IntegrityError


@pytest.fixture()
def db():
    catalog = Catalog("t")
    catalog.create_relation(
        "dept",
        [("dept_id", DataType.INTEGER), ("name", DataType.TEXT)],
        primary_key=["dept_id"],
    )
    catalog.create_relation(
        "emp",
        [
            ("emp_id", DataType.INTEGER),
            Attribute("name", DataType.TEXT, nullable=False),
            ("dept_id", DataType.INTEGER),
            ("salary", DataType.FLOAT),
        ],
        primary_key=["emp_id"],
    )
    catalog.add_foreign_key("emp", "dept_id", "dept")
    return Database(catalog)


class TestInsert:
    def test_positional_insert(self, db):
        db.insert("dept", [1, "Sales"])
        assert db.count("dept") == 1

    def test_mapping_insert_fills_missing_with_null(self, db):
        db.insert("dept", {"dept_id": 1, "name": "Sales"})
        db.insert("emp", {"emp_id": 1, "name": "Ann", "dept_id": 1})
        assert db.rows("emp")[0]["salary"] is None

    def test_unknown_column_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("dept", {"dept_id": 1, "name": "x", "ghost": 2})

    def test_wrong_arity_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("dept", [1])

    def test_type_checked(self, db):
        with pytest.raises(Exception):
            db.insert("dept", ["one", "Sales"])

    def test_not_null_enforced(self, db):
        db.insert("dept", [1, "Sales"])
        with pytest.raises(IntegrityError):
            db.insert("emp", {"emp_id": 1, "dept_id": 1})

    def test_duplicate_pk_rejected(self, db):
        db.insert("dept", [1, "Sales"])
        with pytest.raises(IntegrityError):
            db.insert("dept", [1, "Other"])

    def test_fk_enforced(self, db):
        db.insert("dept", [1, "Sales"])
        with pytest.raises(IntegrityError):
            db.insert("emp", [1, "Ann", 99, 100.0])

    def test_null_fk_allowed(self, db):
        db.insert("emp", [1, "Ann", None, None])

    def test_fk_enforcement_can_be_disabled(self):
        catalog = Catalog("t")
        catalog.create_relation(
            "a", [("a_id", DataType.INTEGER)], primary_key=["a_id"]
        )
        catalog.create_relation("b", [("a_id", DataType.INTEGER)])
        catalog.add_foreign_key("b", "a_id", "a")
        loose = Database(catalog, enforce_foreign_keys=False)
        loose.insert("b", [42])  # no matching a row: accepted

    def test_insert_many(self, db):
        count = db.insert_many("dept", [[1, "a"], [2, "b"], [3, "c"]])
        assert count == 3 and db.count("dept") == 3


class TestAccess:
    def test_column_values(self, db):
        db.insert_many("dept", [[1, "Sales"], [2, "R&D"]])
        assert db.column_values("dept", "name") == ["Sales", "R&D"]

    def test_rows_returns_dicts(self, db):
        db.insert("dept", [1, "Sales"])
        assert db.rows("dept") == [{"dept_id": 1, "name": "Sales"}]

    def test_execute_accepts_text_and_ast(self, db):
        db.insert("dept", [1, "Sales"])
        from repro.sqlkit import parse

        by_text = db.execute("SELECT name FROM dept")
        by_ast = db.execute(parse("SELECT name FROM dept"))
        assert by_text.rows == by_ast.rows == [("Sales",)]
