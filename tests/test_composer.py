"""Unit tests for the Standard SQL Composer (paper §6.2)."""

import pytest

from repro.core import TranslatorConfig
from repro.core.composer import Composer, TranslationError
from repro.core.mapper import RelationTreeMapper
from repro.core.mtjn import MTJNGenerator
from repro.core.relation_tree import build_relation_trees
from repro.core.similarity import SimilarityEvaluator
from repro.core.triples import extract
from repro.core.view_graph import ExtendedViewGraph, ViewGraph
from repro.sqlkit import ast, parse

from tests.helpers import PAPER_QUERY


def compose_best(db, sql, outer_bindings=None):
    config = TranslatorConfig()
    query = parse(sql)
    extraction = extract(query)
    trees = build_relation_trees(extraction)
    if outer_bindings:
        # mimic the translator: correlated trees are not mapped locally
        trees = [
            tree
            for tree in trees
            if not (
                tree.key[0] == "name"
                and tree.key[1] in outer_bindings
                and tree.key[1] not in extraction.from_bindings
            )
        ]
    evaluator = SimilarityEvaluator(db, config)
    mapper = RelationTreeMapper(db, config, evaluator)
    mappings = mapper.map_trees(trees)
    graph = ExtendedViewGraph(
        ViewGraph(db.catalog), trees, mappings, evaluator, config
    )
    network = MTJNGenerator(graph, config).generate(1)[0]
    composer = Composer(db.catalog)
    return composer.compose(
        query, trees, mappings, network, extraction.from_bindings,
        outer_bindings=outer_bindings,
    )


class TestStep1NameInstantiation:
    def test_all_names_exact_after_compose(self, fig1_db):
        composed = compose_best(fig1_db, PAPER_QUERY)
        for node in composed.select.walk():
            if isinstance(node, ast.ColumnRef):
                assert node.attribute.certainty is ast.Certainty.EXACT
                if node.relation is not None:
                    assert node.relation.certainty is ast.Certainty.EXACT
            if isinstance(node, ast.TableRef):
                assert node.name.certainty is ast.Certainty.EXACT

    def test_guessed_attribute_replaced_by_catalog_name(self, fig1_db):
        composed = compose_best(
            fig1_db, "SELECT movie?.title? WHERE movie?.year? > 2000"
        )
        assert "release_year" in composed.sql

    def test_value_literals_untouched(self, fig1_db):
        composed = compose_best(fig1_db, PAPER_QUERY)
        assert "'James Cameron'" in composed.sql
        assert "1995" in composed.sql


class TestStep2FromClause:
    def test_repeated_relation_gets_aliases(self, fig1_db):
        composed = compose_best(fig1_db, PAPER_QUERY)
        assert composed.sql.count("Person AS") == 2

    def test_single_occurrence_keeps_plain_name(self, fig1_db):
        composed = compose_best(fig1_db, PAPER_QUERY)
        assert "Movie AS" not in composed.sql

    def test_user_alias_preserved(self, fig1_db):
        composed = compose_best(
            fig1_db, "SELECT m.title FROM Movie m WHERE m.release_year > 2000"
        )
        assert "Movie AS m" in composed.sql

    def test_every_mtjn_node_in_from(self, fig1_db):
        composed = compose_best(fig1_db, PAPER_QUERY)
        assert len(composed.select.from_items) == len(composed.network.nodes)


class TestStep3JoinConditions:
    def test_one_condition_per_edge(self, fig1_db):
        composed = compose_best(fig1_db, PAPER_QUERY)
        edges = len(composed.network.all_edges)
        join_conditions = [
            c
            for c in _conjuncts(composed.select.where)
            if isinstance(c, ast.BinaryOp)
            and c.op == "="
            and isinstance(c.left, ast.ColumnRef)
            and isinstance(c.right, ast.ColumnRef)
        ]
        assert len(join_conditions) == edges

    def test_user_join_condition_not_duplicated(self, fig1_db):
        composed = compose_best(
            fig1_db,
            "SELECT p.name FROM Person p, Director d "
            "WHERE p.person_id = d.person_id AND d.movie_id = 10",
        )
        text = composed.sql.lower()
        assert text.count("person_id = d.person_id") + text.count(
            "d.person_id = p.person_id"
        ) == 1

    def test_bindings_exposed_for_nested_blocks(self, fig1_db):
        composed = compose_best(fig1_db, PAPER_QUERY)
        assert "movie" in composed.bindings.values() or "movie" in {
            v.lower() for v in composed.bindings.values()
        }


class TestOuterReferences:
    def test_outer_qualified_ref_resolved(self, fig1_db):
        composed = compose_best(
            fig1_db,
            "SELECT count(*) FROM Director WHERE Director.person_id = outerp.person_id?",
            outer_bindings={"outerp": "person"},
        )
        assert "outerp.person_id" in composed.sql

    def test_outer_fuzzy_attribute_resolved_by_similarity(self, fig1_db):
        composed = compose_best(
            fig1_db,
            "SELECT count(*) FROM Director WHERE Director.person_id = outerp.person_identifier?",
            outer_bindings={"outerp": "person"},
        )
        assert "outerp.person_id" in composed.sql


def _conjuncts(expr):
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]
