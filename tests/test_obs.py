"""Tests for the observability layer: tracing, metrics, integration.

Covers the ``repro.obs`` primitives in isolation (span trees, ring
buffer bounds, exporters, registry semantics, Prometheus exposition),
the end-to-end span surface produced by a real translation, the
service-level trace with admission/retry/breaker events, and the
non-interference property: tracing must never change a translation.
"""

from __future__ import annotations

import io
import json
import re

import pytest

from repro import (
    Database,
    QueryService,
    SchemaFreeTranslator,
    TranslationError,
)
from repro.core.resilience import Budget
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_SPAN,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    JsonlExporter,
    MetricsRegistry,
    NullTracer,
    RingBufferExporter,
    Span,
    Tracer,
    record_translation,
    render_trace,
    validate_metric_name,
)
from repro.service import (
    BreakerConfig,
    NO_RETRY,
    RetryPolicy,
    ServiceConfig,
)
from repro.testing.faults import FaultInjector

from tests.conftest import make_fig1_catalog, populate_fig1

CAMERON = "SELECT name? WHERE director_name? = 'James Cameron'"
HANKS = "SELECT title? WHERE actor?.name? = 'Tom Hanks'"


def make_db() -> Database:
    db = Database(make_fig1_catalog())
    populate_fig1(db)
    return db


class ManualClock:
    """Deterministic monotonic clock for span timing tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# spans and tracer
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_via_context_managers(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert root.parent_id is None
        # all three share the root's trace id
        assert {s.trace_id for s in (root, child, grand)} == {root.trace_id}
        # exported innermost-first, exactly once each
        assert [s.name for s in ring.spans()] == [
            "grandchild",
            "child",
            "root",
        ]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_durations_use_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("timed") as span:
            clock.advance(2.5)
        assert span.duration == pytest.approx(2.5)
        assert span.start == pytest.approx(100.0)
        assert span.end == pytest.approx(102.5)

    def test_attributes_and_events(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("s") as span:
            span.set(rung="full", candidates=3)
            span.set_attribute("rung", "reduced")  # last write wins
            clock.advance(1.0)
            span.event("retry", attempt=1)
        assert span.attributes["rung"] == "reduced"
        assert span.attributes["candidates"] == 3
        (event,) = span.events
        assert event["name"] == "retry"
        assert event["attributes"] == {"attempt": 1}
        assert event["time"] == pytest.approx(101.0)

    def test_exception_marks_span_failed(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = ring.spans()
        assert span.status == "error"
        assert "ValueError: boom" in span.attributes["error"]

    def test_fail_is_explicit_and_finish_idempotent(self):
        clock = ManualClock()
        ring = RingBufferExporter()
        tracer = Tracer(clock=clock, exporters=[ring])
        span = tracer.start_span("owned")
        span.fail(TranslationError("no mapping"))
        clock.advance(1.0)
        span.finish()
        clock.advance(5.0)
        span.finish()  # idempotent: no re-export, end unchanged
        assert span.end == pytest.approx(101.0)
        assert len(ring.spans()) == 1
        assert span.status == "error"

    def test_start_span_with_explicit_parent(self):
        tracer = Tracer()
        parent = tracer.start_span("request")
        child = tracer.start_span("translate", parent=parent)
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_use_span_adopts_across_stack(self):
        tracer = Tracer()
        request = tracer.start_span("service.request")
        with tracer.use_span(request):
            with tracer.span("translate") as inner:
                pass
        assert inner.parent_id == request.span_id
        # use_span does not finish the adopted span
        assert request.end is None
        assert tracer.current() is None

    def test_to_dict_schema(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("s") as span:
            span.set(k=1)
            span.event("e")
            clock.advance(0.5)
        record = span.to_dict()
        assert record["name"] == "s"
        assert record["status"] == "ok"
        assert record["duration"] == pytest.approx(0.5)
        assert record["attributes"] == {"k": 1}
        assert [e["name"] for e in record["events"]] == ["e"]
        json.dumps(record)  # must be JSON-able as exported


class TestNullTracer:
    def test_null_span_is_shared_and_inert(self):
        assert NULL_TRACER.span("anything") is NULL_SPAN
        assert NULL_TRACER.start_span("anything") is NULL_SPAN
        assert not NULL_SPAN.enabled
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("x") as span:
            span.set(a=1).set_attribute("b", 2)
            span.event("e", k=3)
            span.fail(ValueError("ignored"))
            span.finish()
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.events == []

    def test_null_use_span_passthrough(self):
        with NULL_TRACER.use_span(NULL_SPAN) as span:
            assert span is NULL_SPAN
        assert NULL_TRACER.current() is None

    def test_exceptions_propagate_through_null_span(self):
        tracer = NullTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("x"):
                raise RuntimeError("still visible")


class TestRingBuffer:
    def test_bounded_with_dropped_counter(self):
        ring = RingBufferExporter(capacity=3)
        tracer = Tracer(exporters=[ring])
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in ring.spans()] == ["s2", "s3", "s4"]
        assert ring.dropped == 2
        ring.clear()
        assert ring.spans() == []
        assert ring.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferExporter(capacity=0)

    def test_trace_and_last_trace(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with tracer.span("first") as first:
            with tracer.span("first.child"):
                pass
        with tracer.span("second") as second:
            pass
        assert {s.name for s in ring.trace(first.trace_id)} == {
            "first",
            "first.child",
        }
        assert [s.name for s in ring.last_trace()] == ["second"]
        assert second.trace_id != first.trace_id


class TestJsonlExporter:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlExporter(str(path)) as jsonl:
            tracer = Tracer(exporters=[jsonl])
            with tracer.span("root"):
                with tracer.span("child") as child:
                    child.set(k="v")
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["child", "root"]
        assert records[0]["attributes"] == {"k": "v"}
        assert records[0]["parent_id"] == records[1]["span_id"]

    def test_export_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        jsonl = JsonlExporter(str(path))
        tracer = Tracer(exporters=[jsonl])
        with tracer.span("before"):
            pass
        jsonl.close()
        with tracer.span("after"):
            pass  # must not raise on a closed file
        records = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [r["name"] for r in records] == ["before"]


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricNames:
    def test_scheme_enforced(self):
        assert validate_metric_name("repro_translate_queries_total")
        for bad in (
            "translate_queries_total",  # no repro_ prefix
            "repro",  # prefix alone
            "repro_Translate_total",  # upper case
            "repro__double",  # empty segment
            "repro_1x_total",  # segment starts with a digit
        ):
            with pytest.raises(ValueError):
                validate_metric_name(bad)


class TestCounter:
    def test_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help")
        counter.inc()
        counter.inc(2, outcome="ok")
        counter.inc(3, outcome="ok")
        assert counter.value() == 1
        assert counter.value(outcome="ok") == 5
        assert counter.value(outcome="missing") == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_test_inflight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6
        gauge.set(0, database="other")
        assert gauge.value(database="other") == 0
        assert gauge.value() == 6


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", "help", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(100.0)  # lands in +Inf
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(100.55)
        text = _registry_of(histogram).render_text()
        assert 'repro_test_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_test_seconds_bucket{le="1"} 2' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_test_seconds_count 3" in text

    def test_boundary_lands_in_its_bucket(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(0.1, 1.0)
        )
        histogram.observe(0.1)  # le="0.1" is inclusive, Prometheus-style
        snapshot = histogram._snapshot()[""]
        assert snapshot["buckets"]["0.1"] == 1
        assert snapshot["inf"] == 0

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("repro_test_a_seconds", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("repro_test_b_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            registry.histogram("repro_test_c_seconds", buckets=(1.0, 1.0))


def _registry_of(instrument):
    """Wrap a bare instrument for render tests."""
    registry = MetricsRegistry()
    registry._instruments[instrument.name] = instrument
    return registry


class TestRegistry:
    def test_registration_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_test_total", "help")
        b = registry.counter("repro_test_total", "different help ignored")
        assert a is b

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_test_total")

    def test_histogram_bucket_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("repro_test_seconds", buckets=(0.1, 1.0))
        registry.histogram("repro_test_seconds", buckets=(0.1, 1.0))  # ok
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("repro_test_seconds", buckets=(0.5,))

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS)
        )

    def test_label_escaping_in_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(
            1, query='say "hi"\nback\\slash'
        )
        text = registry.render_text()
        assert '\\"hi\\"' in text
        assert "\\n" in text
        assert "\\\\slash" in text

    def test_render_text_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a help").inc(2, k="v")
        registry.gauge("repro_b_inflight", "b help").set(1)
        registry.histogram(
            "repro_c_seconds", "c help", buckets=(1.0,)
        ).observe(0.5)
        text = registry.render_text()
        lines = text.strip().splitlines()
        # every sample line: name{labels} value, with HELP/TYPE headers
        sample = re.compile(
            r"^[a-z_]+(\{[a-z_]+=\"[^\"]*\"(,[a-zA-Z+._\"=]+)*\})? -?[0-9.e+]+$"
        )
        seen_types = {}
        for line in lines:
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                seen_types[name] = kind
                continue
            assert sample.match(line), line
        assert seen_types == {
            "repro_a_total": "counter",
            "repro_b_inflight": "gauge",
            "repro_c_seconds": "histogram",
        }
        # headers precede their samples (name-sorted instruments)
        assert text.index("# TYPE repro_a_total") < text.index(
            'repro_a_total{k="v"}'
        )

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(1, k="v")
        registry.histogram("repro_b_seconds", buckets=(1.0,)).observe(2.0)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["repro_a_total"]["values"] == {"k=v": 1}
        hist = round_tripped["repro_b_seconds"]["values"][""]
        assert hist["inf"] == 1 and hist["count"] == 1

    def test_record_translation_shapes(self):
        registry = MetricsRegistry()
        translator = SchemaFreeTranslator(make_db())
        translator.translate(CAMERON)
        record_translation(
            registry, translator.last_translation_stats, "ok", "full"
        )
        snapshot = registry.snapshot()
        queries = snapshot["repro_translate_queries_total"]["values"]
        assert queries == {"outcome=ok,rung=full": 1}
        assert "repro_translate_stage_seconds" in snapshot
        assert (
            snapshot["repro_translate_candidates_total"]["values"][""] > 0
        )


# ---------------------------------------------------------------------------
# translator span surface (the documented span names)
# ---------------------------------------------------------------------------


class TestTranslatorTracing:
    def translate_traced(self, query, **kwargs):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        translator = SchemaFreeTranslator(make_db(), tracer=tracer)
        translations = translator.translate(query, **kwargs)
        return translations, ring.spans()

    def test_successful_translation_span_tree(self):
        translations, spans = self.translate_traced(CAMERON)
        names = [s.name for s in spans]
        for expected in (
            "translate",
            "parse",
            "extract",
            "rung:full",
            "map",
            "map.tree",
            "network",
            "mtjn",
            "compose",
        ):
            assert expected in names, f"missing span {expected!r}"
        root = next(s for s in spans if s.name == "translate")
        assert root.status == "ok"
        assert root.parent_id is None
        assert root.attributes["rung"] == "full"
        assert root.attributes["results"] == len(translations)
        # every other span is a descendant of the root
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span is root:
                continue
            cursor = span
            while cursor.parent_id is not None:
                cursor = by_id[cursor.parent_id]
            assert cursor is root

    def test_map_tree_span_carries_sigma_candidates(self):
        _, spans = self.translate_traced(CAMERON)
        tree_spans = [s for s in spans if s.name == "map.tree"]
        assert tree_spans
        candidates = tree_spans[0].attributes["candidates"]
        assert candidates, "expected a non-empty candidate list"
        for candidate in candidates:
            assert set(candidate) == {"relation", "sigma", "kept"}
        assert any(c["kept"] for c in candidates)

    def test_degraded_translation_records_rungs(self):
        translations, spans = self.translate_traced(
            CAMERON, budget=Budget(max_candidates=10)
        )
        names = [s.name for s in spans]
        assert "rung:full" in names
        full = next(s for s in spans if s.name == "rung:full")
        assert full.attributes["outcome"] == "budget-exhausted"
        # some later rung produced the result
        assert translations[0].rung != "full"
        assert any(
            name.startswith("rung:") and name != "rung:full"
            for name in names
        )

    def test_failed_translation_marks_root_error(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        from repro.core.translator import TranslatorConfig

        translator = SchemaFreeTranslator(
            make_db(), TranslatorConfig(kdef=0.0), tracer=tracer
        )
        with pytest.raises(TranslationError):
            translator.translate("SELECT zzzqqqxxx?.wwwvvv?")
        root = next(s for s in ring.spans() if s.name == "translate")
        assert root.status == "error"
        assert "error" in root.attributes

    def test_render_trace_shows_tree_and_sigma(self):
        _, spans = self.translate_traced(CAMERON)
        text = render_trace(spans)
        assert "translate" in text
        assert "rung:full" in text
        assert "σ=" in text
        # render is resilient: no crash on scalar values for block keys
        assert "candidates" not in text.lower() or True


# ---------------------------------------------------------------------------
# service span integration: admission, retries, breaker on one trace
# ---------------------------------------------------------------------------


class TestServiceTracing:
    def run_service(self, queries, config=None, injector=None, workers=8):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        metrics = MetricsRegistry()
        config = config or ServiceConfig(workers=workers)
        with QueryService(
            make_db(),
            config,
            faults=injector,
            tracer=tracer,
            metrics=metrics,
        ) as service:
            responses = service.run(queries)
        return responses, ring.spans(), metrics

    def test_request_spans_wrap_translations(self):
        queries = [CAMERON, HANKS] * 4
        responses, spans, metrics = self.run_service(queries, workers=8)
        assert all(r.ok for r in responses)
        requests = [s for s in spans if s.name == "service.request"]
        assert len(requests) == len(queries)
        for request in requests:
            events = {e["name"] for e in request.events}
            assert {"admitted", "dequeued"} <= events
            assert request.attributes["outcome"] == "ok"
        # every translate root is parented to a request span
        request_ids = {s.span_id for s in requests}
        translates = [s for s in spans if s.name == "translate"]
        assert len(translates) == len(queries)
        assert {s.parent_id for s in translates} <= request_ids
        # and the traces are disjoint: one request, one trace
        assert len({s.trace_id for s in requests}) == len(requests)
        snapshot = metrics.snapshot()
        outcomes = snapshot["repro_service_requests_total"]["values"]
        assert outcomes == {"database=default,outcome=ok": len(queries)}
        assert (
            snapshot["repro_service_request_seconds"]["values"][""]["count"]
            == len(queries)
        )
        assert snapshot["repro_service_inflight"]["values"][""] == 0

    def test_retry_event_lands_on_request_span(self):
        injector = FaultInjector()
        injector.inject_error("map", trigger=1)
        config = ServiceConfig(workers=1, retry=RetryPolicy(max_retries=2))
        responses, spans, metrics = self.run_service(
            [CAMERON], config=config, injector=injector
        )
        assert responses[0].ok and responses[0].retries == 1
        (request,) = [s for s in spans if s.name == "service.request"]
        retries = [e for e in request.events if e["name"] == "retry"]
        assert len(retries) == 1
        assert retries[0]["attributes"]["attempt"] == 1
        assert retries[0]["attributes"]["delay"] > 0
        # the failed first attempt and the good second both traced
        translates = [s for s in spans if s.name == "translate"]
        assert len(translates) == 2
        assert {s.status for s in translates} == {"error", "ok"}
        assert (
            metrics.snapshot()["repro_service_retries_total"]["values"][
                "database=default"
            ]
            == 1
        )

    def test_breaker_trip_recorded_in_spans_and_metrics(self):
        injector = FaultInjector()
        injector.inject_budget_exhaustion("network", trigger=1)
        injector.inject_budget_exhaustion("network", trigger=2)
        config = ServiceConfig(
            workers=1,
            retry=NO_RETRY,
            breaker=BreakerConfig(
                failure_threshold=2, cooldown=60.0, pinned_rung="greedy"
            ),
        )
        responses, spans, metrics = self.run_service(
            [CAMERON, CAMERON, CAMERON], config=config, injector=injector
        )
        assert all(r.ok for r in responses)
        assert responses[2].rung == "greedy"  # pinned by the open breaker
        requests = [s for s in spans if s.name == "service.request"]
        pinned = [
            s for s in requests if s.attributes.get("pinned_rung") == "greedy"
        ]
        assert len(pinned) == 1
        snapshot = metrics.snapshot()
        transitions = snapshot["repro_breaker_transitions_total"]["values"]
        assert transitions == {"database=default,from=closed,to=open": 1}
        assert snapshot["repro_breaker_state"]["values"] == {
            "database=default": 2  # 2 = open
        }

    def test_shed_request_gets_failed_span(self):
        import threading

        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        metrics = MetricsRegistry()
        release = threading.Event()
        config = ServiceConfig(
            workers=1,
            queue_limit=0,
            request_hook=lambda request: release.wait(timeout=30),
        )
        with QueryService(
            make_db(), config, tracer=tracer, metrics=metrics
        ) as service:
            blocker = service.submit(CAMERON)
            shed = service.submit(CAMERON)  # 1 worker + 0 queue: shed
            assert shed.result(timeout=1).outcome == "shed"
            release.set()
            assert blocker.result(timeout=30).ok
        shed_spans = [
            s
            for s in ring.spans()
            if s.name == "service.request"
            and s.attributes.get("outcome") == "shed"
        ]
        assert len(shed_spans) == 1
        assert shed_spans[0].status == "error"
        assert {e["name"] for e in shed_spans[0].events} == {"shed"}
        assert (
            metrics.snapshot()["repro_service_requests_total"]["values"][
                "database=default,outcome=shed"
            ]
            == 1
        )


# ---------------------------------------------------------------------------
# non-interference: tracing never changes a translation
# ---------------------------------------------------------------------------


def deterministic_stats(stats) -> dict:
    """The wall-clock-free projection of TranslationStats."""
    as_dict = stats.as_dict()
    return {
        key: as_dict[key]
        for key in ("queries", "candidates", "expansions", "generator", "memo")
    }


class TestTracingNonInterference:
    QUERIES = [CAMERON, HANKS, "SELECT title? WHERE Director.name? = 'x'"]

    def translate_with(self, tracer, budget_factory=None):
        translator = SchemaFreeTranslator(
            make_db(),
            tracer=tracer,
        )
        outputs = []
        for query in self.QUERIES:
            budget = budget_factory() if budget_factory else None
            translations = translator.translate(query, budget=budget)
            outputs.append(
                (
                    [t.sql for t in translations],
                    deterministic_stats(translator.last_translation_stats),
                )
            )
        return outputs

    def test_traced_equals_untraced(self):
        untraced = self.translate_with(None)
        traced = self.translate_with(
            Tracer(exporters=[RingBufferExporter()])
        )
        assert traced == untraced

    def test_traced_equals_untraced_under_degradation(self):
        factory = lambda: Budget(max_candidates=10)
        untraced = self.translate_with(None, factory)
        traced = self.translate_with(
            Tracer(exporters=[RingBufferExporter()]), factory
        )
        assert traced == untraced

    def test_interleaved_tracing_on_off_identical(self):
        """Property: any on/off interleaving over one shared context
        produces byte-identical SQL and identical deterministic stats."""
        database = make_db()
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        baseline_translator = SchemaFreeTranslator(database)
        # share the warmed context across both instrumented translators
        traced = SchemaFreeTranslator(
            database,
            context=baseline_translator.context,
            tracer=tracer,
        )
        plain = SchemaFreeTranslator(
            database, context=baseline_translator.context
        )
        # a deterministic "random" interleaving
        pattern = [True, False, False, True, True, False, True, False]
        expected = [
            [t.sql for t in baseline_translator.translate(q)]
            for q in self.QUERIES
        ]
        for round_index, use_tracing in enumerate(pattern):
            translator = traced if use_tracing else plain
            for query, want in zip(self.QUERIES, expected):
                got = [t.sql for t in translator.translate(query)]
                assert got == want, (
                    f"round {round_index} (tracing={use_tracing}) diverged"
                )
        # and the traced rounds really did record spans
        assert any(s.name == "translate" for s in ring.spans())
