"""Tests for repro.artifacts — persistent translation-context artifacts.

Three contracts under test:

* **round trip** — a context attached from an artifact translates every
  workload byte-identically to a freshly-built one (the hypothesis
  property sweeps query subsets and k), and a ``data_version`` bump
  correctly *misses* the stale artifact instead of serving stale memos;
* **robustness** — truncated, corrupted, version-skewed and mis-keyed
  files raise typed :class:`ArtifactError` subclasses carrying an
  ``artifact``-stage diagnostic, and :func:`load_or_build_context`
  falls back to a fresh build — never a wrong answer, never a failed
  query;
* **fleet** — the supervisor publishes one artifact per shard and every
  worker (including post-crash replacements) attaches it, reported in
  the ready frame and the supervisor snapshot.
"""

from __future__ import annotations

import os
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.artifacts import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactKeyMismatch,
    ArtifactReader,
    ArtifactStore,
    ArtifactVersionSkew,
    artifact_key,
    build_artifact,
    ensure_artifact,
    load_context,
    load_or_build_context,
    register_metrics,
)
from repro.artifacts.format import MAGIC, config_digest
from repro.core.config import DEFAULT_CONFIG
from repro.core.context import TranslationContext
from repro.core.rescache import schema_fingerprint
from repro.core.translator import SchemaFreeTranslator
from repro.datasets import make_course_database, make_movie_database
from repro.obs import MetricsRegistry, RingBufferExporter, Tracer
from repro.workloads import COURSE_QUERIES, TEXTBOOK_QUERIES

TOP_K = 3

MOVIE_QUERIES = [q.sf_sql or q.gold_sql for q in TEXTBOOK_QUERIES]
COURSE_SQL = [q.sf_sql or q.gold_sql for q in COURSE_QUERIES]

WORKLOADS = {
    "movies": (make_movie_database, MOVIE_QUERIES),
    "courses": (make_course_database, COURSE_SQL),
}


def translate_all(database, queries, context=None):
    translator = SchemaFreeTranslator(
        database, DEFAULT_CONFIG, context=context
    )
    return [
        [t.sql for t in translator.translate(q, top_k=TOP_K)]
        for q in queries
    ]


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def workload_artifact(request, tmp_path_factory):
    """(name, factory, queries, path, fresh results) per workload — the
    artifact is built once per module, warmed on the full workload."""
    name = request.param
    factory, queries = WORKLOADS[name]
    store = ArtifactStore(str(tmp_path_factory.mktemp(f"store-{name}")))
    path = build_artifact(
        factory(), store, warmup=queries, warmup_top_k=TOP_K
    )
    fresh = translate_all(factory(), queries)
    return name, factory, queries, path, fresh


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------


class TestStore:
    def test_put_get_roundtrip_and_touch(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        path = store.put("k1", b"payload")
        assert store.get("k1") == path
        assert open(path, "rb").read() == b"payload"
        assert store.get("missing") is None

    def test_put_is_atomic_no_temp_left_behind(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("k1", b"x" * 1024)
        leftovers = [f for f in os.listdir(tmp_path) if f.startswith(".tmp")]
        assert leftovers == []

    def test_gc_evicts_lru_under_budget(self, tmp_path):
        store = ArtifactStore(str(tmp_path), max_bytes=2500)
        for index in range(4):
            path = store.put(f"k{index}", bytes(1000))
            os.utime(path, (index, index))  # deterministic LRU order
        evicted = store.gc()
        assert sorted(e.key for e in evicted) == ["k0", "k1"]
        assert sorted(e.key for e in store.list()) == ["k2", "k3"]

    def test_key_depends_on_all_components(self):
        base = artifact_key("fp", 1, DEFAULT_CONFIG)
        assert artifact_key("fp2", 1, DEFAULT_CONFIG) != base
        assert artifact_key("fp", 2, DEFAULT_CONFIG) != base

    def test_config_digest_ignores_cache_budgets(self):
        import dataclasses

        resized = dataclasses.replace(DEFAULT_CONFIG, result_cache_size=9)
        assert config_digest(resized) == config_digest(DEFAULT_CONFIG)
        other = dataclasses.replace(DEFAULT_CONFIG, max_expansions=7)
        assert config_digest(other) != config_digest(DEFAULT_CONFIG)


# ---------------------------------------------------------------------------
# round trip
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_loaded_context_translates_byte_identically(
        self, workload_artifact
    ):
        _, factory, queries, path, fresh = workload_artifact
        database = factory()
        context = load_context(path, database)
        assert context.stats.neighbor_builds == 0  # attached, not rebuilt
        assert translate_all(database, queries, context) == fresh

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_any_query_subset_and_k_matches_fresh(
        self, workload_artifact, data
    ):
        """Property: for any serving order/subset and any k, an
        artifact-attached context answers exactly like a fresh one."""
        _, factory, queries, path, _ = workload_artifact
        subset = data.draw(
            st.lists(
                st.sampled_from(queries), min_size=1, max_size=4, unique=True
            )
        )
        k = data.draw(st.integers(min_value=1, max_value=4))
        database = factory()
        context = load_context(path, database)
        loaded_translator = SchemaFreeTranslator(
            database, DEFAULT_CONFIG, context=context
        )
        fresh_translator = SchemaFreeTranslator(factory(), DEFAULT_CONFIG)
        for query in subset:
            assert [
                t.sql for t in loaded_translator.translate(query, top_k=k)
            ] == [t.sql for t in fresh_translator.translate(query, top_k=k)]

    def test_data_version_bump_misses_artifact(self, tmp_path):
        """After a write, the old artifact is mis-keyed (typed miss →
        fresh build), and a rebuilt artifact serves the new data."""
        database = make_movie_database()
        store = ArtifactStore(str(tmp_path))
        path = ensure_artifact(database, store, warmup=MOVIE_QUERIES)
        database.insert(
            "movie",
            {"movie_id": 99990, "title": "New", "release_year": 2025},
        )
        with pytest.raises(ArtifactKeyMismatch) as excinfo:
            load_context(path, database)
        assert "data_version" in str(excinfo.value)
        context, error = load_or_build_context(database, path)
        assert isinstance(error, ArtifactKeyMismatch)
        assert translate_all(
            database, MOVIE_QUERIES, context
        ) == translate_all(make_movie_database(), MOVIE_QUERIES)
        # the bumped backend publishes under a different key
        rebuilt = ensure_artifact(database, store)
        assert rebuilt != path
        assert len(store.list()) == 2

    def test_samples_load_lazily(self, workload_artifact):
        _, factory, _, path, _ = workload_artifact
        database = factory()
        context = load_context(path, database)
        assert context.stats.sample_loads == 0
        relation = context.relations[0]
        context.column_sample(relation.name, relation.attributes[0].name)
        assert context.stats.sample_loads == 1

    def test_ensure_artifact_hits_published_file(self, tmp_path):
        database = make_movie_database()
        store = ArtifactStore(str(tmp_path))
        first = ensure_artifact(database, store)
        assert ensure_artifact(make_movie_database(), store) == first
        assert len(store.list()) == 1


# ---------------------------------------------------------------------------
# robustness: every failure is typed, diagnosed, and survivable
# ---------------------------------------------------------------------------


def assert_artifact_diagnostic(error: ArtifactError) -> None:
    assert error.diagnostic is not None
    assert error.diagnostic.stage == "artifact"
    assert "recovery" in error.diagnostic.detail


class TestRobustness:
    def test_truncated_file(self, workload_artifact, tmp_path):
        _, factory, _, path, _ = workload_artifact
        clipped = str(tmp_path / "clipped.rpra")
        with open(path, "rb") as source:
            data = source.read()
        with open(clipped, "wb") as target:
            target.write(data[: len(data) // 2])
        with pytest.raises(ArtifactCorrupt) as excinfo:
            load_context(clipped, factory())
        assert_artifact_diagnostic(excinfo.value)

    def test_flipped_payload_byte_fails_checksum(
        self, workload_artifact, tmp_path
    ):
        _, factory, _, path, _ = workload_artifact
        mutated = str(tmp_path / "mutated.rpra")
        data = bytearray(open(path, "rb").read())
        data[-10] ^= 0xFF
        open(mutated, "wb").write(bytes(data))
        with pytest.raises(ArtifactCorrupt) as excinfo:
            load_context(mutated, factory())
        assert "checksum" in str(excinfo.value)
        assert_artifact_diagnostic(excinfo.value)

    def test_version_skew(self, workload_artifact, tmp_path):
        _, factory, _, path, _ = workload_artifact
        skewed = str(tmp_path / "skewed.rpra")
        data = bytearray(open(path, "rb").read())
        struct.pack_into("<H", data, len(MAGIC), 999)  # future format
        open(skewed, "wb").write(bytes(data))
        with pytest.raises(ArtifactVersionSkew) as excinfo:
            load_context(skewed, factory())
        assert_artifact_diagnostic(excinfo.value)

    def test_bad_magic(self, workload_artifact, tmp_path):
        _, factory, _, path, _ = workload_artifact
        alien = str(tmp_path / "alien.rpra")
        data = bytearray(open(path, "rb").read())
        data[:4] = b"NOPE"
        open(alien, "wb").write(bytes(data))
        with pytest.raises(ArtifactCorrupt):
            load_context(alien, factory())

    def test_wrong_database_is_key_mismatch(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        path = build_artifact(make_movie_database(), store)
        with pytest.raises(ArtifactKeyMismatch) as excinfo:
            load_context(path, make_course_database())
        assert "schema fingerprint" in str(excinfo.value)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactCorrupt):
            load_context(str(tmp_path / "ghost.rpra"), make_movie_database())

    def test_fallback_never_fails_the_query(
        self, workload_artifact, tmp_path
    ):
        """Every corruption mode lands on a working fresh context."""
        _, factory, queries, path, fresh = workload_artifact
        data = bytearray(open(path, "rb").read())
        broken = []
        for label, mutate in (
            ("truncated", lambda d: d[:40]),
            ("flipped", lambda d: d[:-5] + bytes([d[-5] ^ 1]) + d[-4:]),
            ("empty", lambda d: b""),
        ):
            target = str(tmp_path / f"{label}.rpra")
            open(target, "wb").write(bytes(mutate(bytes(data))))
            broken.append(target)
        for target in broken:
            database = factory()
            context, error = load_or_build_context(database, target)
            assert isinstance(error, ArtifactError)
            assert translate_all(database, queries[:2], context) == fresh[:2]


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_build_and_load_trace_and_count(self, tmp_path):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        metrics = MetricsRegistry()
        database = make_movie_database()
        store = ArtifactStore(str(tmp_path))
        path = ensure_artifact(
            database, store, tracer=tracer, metrics=metrics
        )
        load_context(
            path, make_movie_database(), tracer=tracer, metrics=metrics
        )
        names = [span.name for span in ring.spans()]
        assert "artifact.build" in names
        assert "artifact.load" in names
        assert "artifact.verify" in names
        snapshot = metrics.snapshot()
        assert snapshot["repro_artifact_builds_total"]["values"]
        assert snapshot["repro_artifact_loads_total"]["values"]
        assert snapshot["repro_artifact_load_seconds"]["values"]

    def test_miss_reasons_are_labelled(self, tmp_path):
        metrics = MetricsRegistry()
        register_metrics(metrics)
        database = make_movie_database()
        load_or_build_context(
            database, str(tmp_path / "ghost.rpra"), metrics=metrics
        )
        values = metrics.snapshot()["repro_artifact_misses_total"]["values"]
        assert any("ArtifactCorrupt" in str(labels) for labels in values)


# ---------------------------------------------------------------------------
# service / CLI / fleet integration
# ---------------------------------------------------------------------------


class TestIntegration:
    def test_service_attaches_artifact_and_reports(self, tmp_path):
        from repro.service import QueryService, ServiceConfig

        database = make_movie_database()
        store = ArtifactStore(str(tmp_path))
        path = ensure_artifact(database, store, warmup=MOVIE_QUERIES[:3])
        with QueryService(
            {"default": make_movie_database()},
            ServiceConfig(workers=1, artifacts={"default": path}),
        ) as service:
            info = service.snapshot()["artifacts"]["default"]
            assert info["loaded"] and info["error"] is None
            response = service.run([MOVIE_QUERIES[0]])[0]
            assert response.ok

    def test_service_falls_back_on_bad_artifact(self, tmp_path):
        from repro.service import QueryService, ServiceConfig

        bad = str(tmp_path / "bad.rpra")
        open(bad, "wb").write(b"garbage")
        with QueryService(
            {"default": make_movie_database()},
            ServiceConfig(workers=1, artifacts={"default": bad}),
        ) as service:
            info = service.snapshot()["artifacts"]["default"]
            assert not info["loaded"]
            assert "truncated" in info["error"]
            assert service.run([MOVIE_QUERIES[0]])[0].ok

    def test_import_precompute_context_cli(self, tmp_path, capsys):
        import sqlite3

        from repro.cli import main

        sqlite_file = str(tmp_path / "tiny.sqlite")
        connection = sqlite3.connect(sqlite_file)
        connection.executescript(
            """
            CREATE TABLE person (
                person_id INTEGER PRIMARY KEY, name TEXT
            );
            INSERT INTO person VALUES (1, 'Ada'), (2, 'Grace');
            """
        )
        connection.commit()
        connection.close()
        exit_code = main(
            [
                "import",
                sqlite_file,
                "--precompute-context",
                "--artifact-dir",
                str(tmp_path / "store"),
                "--execute",
                "SELECT name? WHERE name? = 'Ada'",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "context artifact ready" in out
        assert ArtifactStore(str(tmp_path / "store")).list()

    def test_artifacts_cli_build_list_gc(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path / "store")
        assert main(["artifacts", "build", "--artifact-dir", directory]) == 0
        built_path = capsys.readouterr().out.strip().splitlines()[-1]
        assert os.path.exists(built_path)
        assert main(["artifacts", "list", "--artifact-dir", directory]) == 0
        listing = capsys.readouterr().out
        assert ArtifactReader(built_path).schema_fingerprint[:12] in listing
        assert (
            main(
                [
                    "artifacts",
                    "gc",
                    "--artifact-dir",
                    directory,
                    "--max-bytes",
                    "0",
                ]
            )
            == 0
        )
        assert "evicted 1" in capsys.readouterr().out
        assert not ArtifactStore(directory).list()

    def test_supervisor_shares_one_artifact_across_workers(self, tmp_path):
        from repro.server import DatabaseSpec, Supervisor, SupervisorConfig

        supervisor = Supervisor(
            {"movies": DatabaseSpec(kind="dataset", target="movies")},
            SupervisorConfig(
                workers_per_shard=2,
                auto_watchdog=False,
                artifact_dir=str(tmp_path),
            ),
        )
        with supervisor:
            snapshot = supervisor.snapshot()
            shard = snapshot["shards"]["movies"]
            assert shard["artifact"] and shard["artifact"].endswith(".rpra")
            assert len(ArtifactStore(str(tmp_path)).list()) == 1
            workers = shard["workers"]
            assert len(workers) == 2
            assert all(w["artifacts"] == ["movies"] for w in workers)
            response = supervisor.submit(
                "SELECT title? WHERE actor?.name? = 'Tom Hanks'",
                database="movies",
            ).result(timeout=60)
            assert response.ok
