"""Property-based tests (hypothesis) on core invariants."""

import string

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.similarity import qgrams, string_similarity
from repro.engine.evaluator import compare, like_match
from repro.sqlkit import ast, parse, render, tokenize
from repro.sqlkit.tokens import TokenType

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

identifiers = st.text(
    alphabet=string.ascii_lowercase + "_",
    min_size=1,
    max_size=12,
).filter(lambda s: s[0] != "_" and s not in _RESERVED if True else True)

_RESERVED = {
    "select", "from", "where", "group", "order", "by", "having", "limit",
    "offset", "as", "and", "or", "not", "in", "like", "between", "is",
    "null", "exists", "distinct", "all", "any", "union", "asc", "desc",
    "on", "join", "inner", "left", "right", "outer", "cross", "case",
    "when", "then", "else", "end",
}

safe_identifiers = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=10
).filter(lambda s: s not in _RESERVED)

literal_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(alphabet=string.ascii_letters + " ", max_size=12),
)


def literal_sql(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def simple_selects(draw) -> str:
    """A random well-formed single-block SQL query."""
    columns = draw(st.lists(safe_identifiers, min_size=1, max_size=3, unique=True))
    table = draw(safe_identifiers)
    sql = f"SELECT {', '.join(columns)} FROM {table}"
    if draw(st.booleans()):
        column = draw(safe_identifiers)
        op = draw(comparison_ops)
        value = draw(literal_values)
        sql += f" WHERE {column} {op} {literal_sql(value)}"
        if draw(st.booleans()):
            other = draw(safe_identifiers)
            sql += f" AND {other} BETWEEN 1 AND 10"
    if draw(st.booleans()):
        sql += f" ORDER BY {draw(safe_identifiers)} DESC"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(min_value=0, max_value=99))}"
    return sql


# ---------------------------------------------------------------------------
# tokenizer / parser / renderer round-trips
# ---------------------------------------------------------------------------


class TestSqlRoundTrips:
    @given(simple_selects())
    @settings(max_examples=200)
    def test_render_parse_fixed_point(self, sql):
        once = render(parse(sql))
        twice = render(parse(once))
        assert once == twice

    @given(simple_selects())
    @settings(max_examples=100)
    def test_parse_render_preserves_ast(self, sql):
        tree = parse(sql)
        assert parse(render(tree)) == tree

    @given(st.text(alphabet=string.printable, max_size=60))
    @settings(max_examples=200)
    def test_tokenizer_never_crashes_unexpectedly(self, text):
        from repro.sqlkit import SqlSyntaxError

        try:
            tokens = tokenize(text)
        except SqlSyntaxError:
            return  # rejecting bad input is fine; crashing is not
        assert tokens[-1].type is TokenType.EOF

    @given(literal_values)
    def test_literal_round_trip(self, value):
        from repro.sqlkit import parse_expression

        text = literal_sql(value)
        node = parse_expression(text)
        # negative numbers parse as unary minus over a positive literal
        expected = (
            ast.UnaryOp("-", ast.Literal(-value))
            if isinstance(value, int) and value < 0
            else ast.Literal(value)
        )
        assert node == expected
        assert parse_expression(render(node)) == node


# ---------------------------------------------------------------------------
# string similarity
# ---------------------------------------------------------------------------


class TestSimilarityProperties:
    @given(identifiers, identifiers)
    def test_symmetric(self, a, b):
        assert string_similarity(a, b) == string_similarity(b, a)

    @given(identifiers, identifiers)
    def test_symmetric_under_mixed_case(self, a, b):
        # the cache key is canonicalised (lower-case, ordered args), so
        # no argument order or casing can poison the cache asymmetrically
        assert string_similarity(a.upper(), b) == string_similarity(
            b.upper(), a
        )

    @given(identifiers)
    def test_identity_is_one(self, a):
        assert string_similarity(a, a) == 1.0

    @given(identifiers, identifiers)
    def test_bounded(self, a, b):
        assert 0.0 <= string_similarity(a, b) <= 1.0

    @given(identifiers)
    def test_case_insensitive(self, a):
        assert string_similarity(a, a.upper()) == 1.0

    @given(identifiers, st.integers(min_value=1, max_value=5))
    def test_qgram_count(self, text, q):
        grams = qgrams(text, q)
        # padded string has len + q - 1 positions of q-grams
        assert len(grams) <= len(text) + q - 1

    @given(st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=10))
    def test_plural_matches_singular(self, a):
        # words ending in e/s hit genuine stemming ambiguity (bases/base)
        assume(not a.endswith(("s", "e")))
        assert string_similarity(a, a + "s") == 1.0


# ---------------------------------------------------------------------------
# three-valued comparison semantics
# ---------------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.integers(min_value=-100, max_value=100),
    st.text(alphabet=string.ascii_lowercase, max_size=6),
)


class TestCompareProperties:
    @given(scalars, scalars)
    def test_null_always_unknown(self, a, b):
        assume(a is None or b is None)
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert compare(op, a, b) is None

    @given(scalars, scalars)
    def test_equality_negation_consistent(self, a, b):
        from repro.engine import ExecutionError

        eq = compare("=", a, b)
        ne = compare("<>", a, b)
        if eq is None:
            assert ne is None
        else:
            assert ne == (not eq)

    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=-50, max_value=50))
    def test_trichotomy_on_numbers(self, a, b):
        results = [compare("<", a, b), compare("=", a, b), compare(">", a, b)]
        assert results.count(True) == 1

    @given(st.text(alphabet="ab", max_size=8))
    def test_like_self_match(self, s):
        assert like_match(s, s)

    @given(st.text(alphabet="ab", max_size=8))
    def test_like_percent_matches_everything(self, s):
        assert like_match(s, "%")

    @given(st.text(alphabet="ab", min_size=1, max_size=8))
    def test_like_underscore_positional(self, s):
        assert like_match(s, "_" * len(s))
        assert not like_match(s, "_" * (len(s) + 1))


# ---------------------------------------------------------------------------
# engine invariants on generated data
# ---------------------------------------------------------------------------


@st.composite
def small_tables(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.sampled_from(["red", "green", "blue"]),
            ),
            min_size=0,
            max_size=15,
        )
    )
    return rows


class TestEngineInvariants:
    def _db(self, rows):
        from repro import Catalog, Database, DataType

        catalog = Catalog("prop")
        catalog.create_relation(
            "t", [("v", DataType.INTEGER), ("c", DataType.TEXT)]
        )
        db = Database(catalog)
        for v, c in rows:
            db.insert("t", [v, c])
        return db

    @given(small_tables(), st.integers(min_value=0, max_value=20))
    @settings(max_examples=60)
    def test_where_filters_subset(self, rows, threshold):
        db = self._db(rows)
        everything = db.execute("SELECT v, c FROM t")
        filtered = db.execute(f"SELECT v, c FROM t WHERE v > {threshold}")
        assert len(filtered) <= len(everything)
        assert all(row[0] > threshold for row in filtered)
        assert sorted(filtered.rows) == sorted(
            row for row in everything.rows if row[0] > threshold
        )

    @given(small_tables(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=60)
    def test_limit_bounds_output(self, rows, limit):
        db = self._db(rows)
        result = db.execute(f"SELECT v FROM t ORDER BY v LIMIT {limit}")
        assert len(result) == min(limit, len(rows))
        values = [row[0] for row in result]
        assert values == sorted(values)

    @given(small_tables())
    @settings(max_examples=60)
    def test_distinct_removes_duplicates(self, rows):
        db = self._db(rows)
        result = db.execute("SELECT DISTINCT c FROM t")
        values = [row[0] for row in result]
        assert len(values) == len(set(values))
        assert set(values) == {c for _v, c in rows}

    @given(small_tables())
    @settings(max_examples=60)
    def test_count_matches_python(self, rows):
        db = self._db(rows)
        assert db.execute("SELECT count(*) FROM t").scalar() == len(rows)

    @given(small_tables())
    @settings(max_examples=60)
    def test_group_by_partitions(self, rows):
        db = self._db(rows)
        result = db.execute("SELECT c, count(*) FROM t GROUP BY c")
        assert sum(row[1] for row in result) == len(rows)

    @given(small_tables())
    @settings(max_examples=60)
    def test_aggregates_match_python(self, rows):
        db = self._db(rows)
        result = db.execute("SELECT min(v), max(v), sum(v) FROM t").rows[0]
        values = [v for v, _c in rows]
        if values:
            assert result == (min(values), max(values), sum(values))
        else:
            assert result == (None, None, None)

    @given(small_tables())
    @settings(max_examples=40)
    def test_union_all_is_concatenation(self, rows):
        db = self._db(rows)
        doubled = db.execute(
            "SELECT v FROM t UNION ALL SELECT v FROM t"
        )
        assert len(doubled) == 2 * len(rows)


# ---------------------------------------------------------------------------
# identifier quoting (satellite: reserved words and weird characters)
# ---------------------------------------------------------------------------

weird_identifiers = st.one_of(
    st.sampled_from(sorted(_RESERVED)),
    st.text(
        alphabet=string.ascii_letters + string.digits + ' _$"',
        min_size=1,
        max_size=12,
    ),
)


class TestIdentifierQuoting:
    @given(weird_identifiers)
    @settings(max_examples=200)
    def test_render_identifier_tokenizes_back(self, name):
        from repro.sqlkit import render_identifier

        tokens = tokenize(render_identifier(name))
        assert len(tokens) == 2  # IDENT, EOF
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == name

    @given(weird_identifiers, weird_identifiers, weird_identifiers)
    @settings(max_examples=200)
    def test_weird_names_round_trip(self, column, table, alias):
        from repro.sqlkit import render_identifier as quote

        sql = (
            f"SELECT {quote(column)} AS {quote(alias)} FROM {quote(table)} "
            f"WHERE {quote(table)}.{quote(column)} IS NOT NULL"
        )
        tree = parse(sql)
        once = render(tree)
        assert parse(once) == tree
        assert render(parse(once)) == once
