"""Unit tests for the view graph and extended view graph (paper §5)."""

import pytest

from repro.core import TranslatorConfig, View, ViewGraph, ViewJoin
from repro.core.mapper import RelationTreeMapper
from repro.core.relation_tree import build_relation_trees
from repro.core.similarity import SimilarityEvaluator
from repro.core.triples import extract
from repro.core.view_graph import ExtendedViewGraph
from repro.sqlkit import parse

from tests.helpers import FIG5_VIEW, PAPER_QUERY, make_xgraph

class TestView:
    def test_tree_shape_enforced(self):
        with pytest.raises(ValueError):
            View("bad", ("A", "B", "C"), (ViewJoin(0, "x", 1, "x"),))

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            View(
                "cyclic",
                ("A", "B"),
                (ViewJoin(0, "x", 1, "x"), ViewJoin(1, "y", 0, "y")),
            )

    def test_out_of_range_join_rejected(self):
        with pytest.raises(ValueError):
            View("oob", ("A", "B"), (ViewJoin(0, "x", 5, "x"),))

    def test_view_graph_validates_relations(self, fig1_db):
        graph = ViewGraph(fig1_db.catalog)
        with pytest.raises(Exception):
            graph.add_view(View("ghost", ("NoSuchRel",), ()))

    def test_single_relation_view_allowed(self, fig1_db):
        graph = ViewGraph(fig1_db.catalog)
        graph.add_view(View("solo", ("Movie",), ()))
        assert len(graph.views) == 1


class TestExtendedGraphNodes:
    def test_mapped_nodes_per_candidate(self, fig1_db):
        xgraph, trees, mappings = make_xgraph(fig1_db)
        for tree in trees:
            nodes = xgraph.nodes_for_tree(tree.key)
            assert len(nodes) == len(mappings[tree.key].candidates)

    def test_plain_node_per_relation(self, fig1_db):
        xgraph, _, _ = make_xgraph(fig1_db)
        plain = [n for n in xgraph.nodes if n.tree_key is None]
        assert len(plain) == len(fig1_db.catalog)

    def test_removal_masks_node(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        node = xgraph.nodes_for_tree(trees[0].key)[0]
        xgraph.remove_node(node)
        assert node not in xgraph.nodes_for_tree(trees[0].key)
        xgraph.restore_node(node)
        assert node in xgraph.nodes_for_tree(trees[0].key)


class TestEdgeWeights:
    def test_paper_example7_enhanced_edge(self, fig1_db):
        # edge (Actor^(), Person^(rt1)) with rt1 named actor?:
        # w = 1 - (1-0.7)(1-0.7) = 0.91
        xgraph, trees, _ = make_xgraph(fig1_db)
        rt1_person = next(
            n
            for n in xgraph.nodes_for_tree(trees[0].key)
            if n.relation == "person"
        )
        actor_plain = next(
            n
            for n in xgraph.nodes
            if n.relation == "actor" and n.tree_key is None
        )
        edges = [
            e
            for e in xgraph.incident_edges(actor_plain)
            if e.other(actor_plain) == rt1_person
        ]
        assert edges and edges[0].weight == pytest.approx(0.91)

    def test_default_edge_weight_is_c(self, fig1_db):
        xgraph, _, _ = make_xgraph(fig1_db)
        plain_pairs = [
            e
            for e in xgraph.edges
            if e.left.tree_key is None and e.right.tree_key is None
        ]
        assert plain_pairs
        assert all(e.weight == pytest.approx(0.7) for e in plain_pairs)

    def test_weights_in_unit_interval(self, fig1_db):
        xgraph, _, _ = make_xgraph(fig1_db)
        assert all(0.0 < e.weight <= 1.0 for e in xgraph.edges)


class TestViewInstances:
    def test_fig5_view_instantiated(self, fig1_db):
        xgraph, _, _ = make_xgraph(fig1_db, views=[FIG5_VIEW])
        assert xgraph.view_instances

    def test_instances_use_distinct_nodes(self, fig1_db):
        xgraph, _, _ = make_xgraph(fig1_db, views=[FIG5_VIEW])
        for instance in xgraph.view_instances:
            ids = [n.node_id for n in instance.nodes]
            assert len(ids) == len(set(ids))

    def test_instance_weight_is_sqrt_of_product(self, fig1_db):
        import math

        xgraph, _, _ = make_xgraph(fig1_db, views=[FIG5_VIEW])
        instance = xgraph.view_instances[0]
        expected = math.sqrt(
            math.prod(edge.weight for edge in instance.edges)
        )
        assert instance.weight == pytest.approx(expected)

    def test_no_tree_used_twice_in_instance(self, fig1_db):
        xgraph, _, _ = make_xgraph(fig1_db, views=[FIG5_VIEW])
        for instance in xgraph.view_instances:
            keys = [
                n.tree_key for n in instance.nodes if n.tree_key is not None
            ]
            assert len(keys) == len(set(keys))


class TestStrongestPaths:
    def test_distance_to_self_is_one(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        node = xgraph.nodes_for_tree(trees[0].key)[0]
        paths = xgraph.strongest_paths_from(node)
        assert paths[node.node_id] == 1.0

    def test_paths_decrease_with_distance(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        node = next(
            n
            for n in xgraph.nodes_for_tree(trees[0].key)
            if n.relation == "person"
        )
        paths = xgraph.strongest_paths_from(node)
        actor = next(
            n
            for n in xgraph.nodes
            if n.relation == "actor" and n.tree_key is None
        )
        movie = next(
            n
            for n in xgraph.nodes
            if n.relation == "movie" and n.tree_key is None
        )
        assert paths[actor.node_id] > paths[movie.node_id] > 0.0

    def test_removed_nodes_break_paths(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        source = next(
            n
            for n in xgraph.nodes_for_tree(trees[0].key)
            if n.relation == "person"
        )
        # cut every plain bridging relation: only neighbours stay reachable
        for node in list(xgraph.nodes):
            if node.tree_key is None and node.relation in (
                "actor",
                "director",
            ):
                xgraph.remove_node(node)
        paths = xgraph.strongest_paths_from(source)
        movie_plain = next(
            n
            for n in xgraph.nodes
            if n.relation == "movie" and n.tree_key is None
        )
        assert paths.get(movie_plain.node_id, 0.0) == 0.0
        xgraph.restore_all()
