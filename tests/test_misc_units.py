"""Assorted unit tests: Result, derivation on set-ops, block transforms."""

import pytest

from repro.core.composer import transform_block, transform_block_select
from repro.engine import ExecutionError
from repro.engine.executor import Result
from repro.sqlkit import ast, parse, parse_expression
from repro.workloads.base import WorkloadQuery
from repro.workloads.derive import derive_course_sfsql, derive_textbook_sfsql


class TestResult:
    def test_len_iter(self):
        result = Result(["a"], [(1,), (2,)])
        assert len(result) == 2
        assert list(result) == [(1,), (2,)]

    def test_scalar_ok(self):
        assert Result(["a"], [(42,)]).scalar() == 42

    def test_scalar_wrong_shape(self):
        with pytest.raises(ExecutionError):
            Result(["a"], [(1,), (2,)]).scalar()
        with pytest.raises(ExecutionError):
            Result(["a", "b"], [(1, 2)]).scalar()

    def test_as_dicts(self):
        result = Result(["a", "b"], [(1, "x")])
        assert result.as_dicts() == [{"a": 1, "b": "x"}]

    def test_equality_by_rows(self):
        assert Result(["a"], [(1,)]) == Result(["z"], [(1,)])
        assert Result(["a"], [(1,)]) != Result(["a"], [(2,)])


class TestBlockTransforms:
    def test_transform_block_stops_at_subqueries(self):
        expr = parse_expression("a + (SELECT max(b) FROM t WHERE c = 1)")

        touched = []

        def spy(node):
            if isinstance(node, ast.ColumnRef):
                touched.append(node.attribute.text)
            return None

        transform_block(expr, spy)
        assert touched == ["a"]  # b and c live inside the sub-query

    def test_transform_block_select_rewrites_all_clauses(self):
        select = parse(
            "SELECT a FROM t WHERE b = 1 GROUP BY c HAVING count(d) > 1 "
            "ORDER BY e"
        )

        def upper(node):
            if isinstance(node, ast.ColumnRef):
                return ast.ColumnRef(
                    ast.exact(node.attribute.text.upper()), node.relation
                )
            return None

        rewritten = transform_block_select(select, upper)
        names = [
            n.attribute.text
            for n in rewritten.walk()
            if isinstance(n, ast.ColumnRef)
        ]
        assert set(names) == {"A", "B", "C", "D", "E"}

    def test_transform_preserves_from_clause(self):
        select = parse("SELECT a FROM t, u")
        rewritten = transform_block_select(select, lambda n: None)
        assert rewritten.from_items == select.from_items


class TestDerivationSetOps:
    def test_textbook_union_derived_per_branch(self):
        sf = derive_textbook_sfsql(
            "SELECT name FROM person WHERE birth_year < 1940 "
            "UNION SELECT name FROM person WHERE birth_year > 1990"
        )
        assert sf.count("UNION") == 1
        assert sf.count("person?.name?") == 2
        assert "FROM" not in sf.upper()

    def test_course_union_derived_per_branch(self):
        sf = derive_course_sfsql(
            "SELECT s.name FROM student s, program p "
            "WHERE s.program_id = p.program_id AND p.level = 'BS' "
            "UNION "
            "SELECT i.name FROM instructor i, department d "
            "WHERE i.department_id = d.department_id AND d.name = 'History'"
        )
        assert "student AS s" in sf and "instructor AS i" in sf
        assert "program_id = " not in sf


class TestWorkloadQuery:
    def test_relation_count_counts_occurrences(self):
        query = WorkloadQuery(
            "x", "intent",
            "SELECT 1 FROM a, a b, c JOIN d ON c.i = d.i",
        )
        assert query.relation_count == 4

    def test_bucket_boundaries(self):
        def q(n):
            tables = ", ".join(f"t{i} x{i}" for i in range(n))
            return WorkloadQuery("x", "i", f"SELECT 1 FROM {tables}")

        assert q(2).bucket() == "2-4"
        assert q(4).bucket() == "2-4"
        assert q(5).bucket() == "5"
        assert q(6).bucket() == "6-10"
        assert q(10).bucket() == "6-10"

    def test_set_op_uses_outermost_left_block(self):
        query = WorkloadQuery(
            "x", "i",
            "SELECT 1 FROM a, b UNION SELECT 1 FROM c",
        )
        assert query.relation_count == 2

    def test_gold_ast_cached_semantics(self):
        query = WorkloadQuery("x", "i", "SELECT 1 FROM a")
        assert isinstance(query.gold_ast, ast.Select)
