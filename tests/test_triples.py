"""Unit tests for expression-triple extraction (paper §3.1)."""

from repro.core.triples import conjuncts_of, extract
from repro.sqlkit import ast, parse


def extract_sql(sql):
    query = parse(sql)
    assert isinstance(query, ast.Select)
    return extract(query)


class TestFromClause:
    def test_from_relations_become_triples(self):
        result = extract_sql("SELECT a FROM t, u AS v")
        from_triples = [t for t in result.triples if t.attribute is None]
        assert [(t.relation.text, t.alias) for t in from_triples] == [
            ("t", None),
            ("u", "v"),
        ]

    def test_from_bindings_keyed_by_alias(self):
        result = extract_sql("SELECT a FROM t, u AS v")
        assert set(result.from_bindings) == {"t", "v"}

    def test_explicit_join_tables_collected(self):
        result = extract_sql("SELECT a FROM t JOIN u ON t.id = u.id")
        assert set(result.from_bindings) == {"t", "u"}


class TestColumnTriples:
    def test_paper_figure2_triples(self):
        result = extract_sql(
            "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
            "and director_name? = 'James Cameron' "
            "and produce_company? = '20th Century Fox' "
            "and year? > 1995 and year? < 2005"
        )
        columns = [t for t in result.triples if t.attribute is not None]
        assert len(columns) == 6
        with_conditions = [t for t in columns if t.condition is not None]
        # gender, director_name, produce_company, and two year conditions
        assert len(with_conditions) == 5

    def test_select_clause_columns_come_first(self):
        result = extract_sql("SELECT a? FROM t WHERE b? = 1")
        columns = [t for t in result.triples if t.attribute is not None]
        assert columns[0].attribute.text == "a"

    def test_flipped_comparison_normalised(self):
        result = extract_sql("SELECT a WHERE 1995 < year?")
        condition = next(
            t.condition for t in result.triples if t.condition is not None
        )
        assert isinstance(condition.predicate, ast.BinaryOp)
        assert condition.predicate.op == ">"

    def test_between_in_like_isnull_are_conditions(self):
        result = extract_sql(
            "SELECT x WHERE a? BETWEEN 1 AND 2 AND b? IN (1, 2) "
            "AND c? LIKE '%v%' AND d? IS NULL"
        )
        conditions = [t for t in result.triples if t.condition is not None]
        assert len(conditions) == 4

    def test_or_disjunction_not_a_condition(self):
        result = extract_sql("SELECT x WHERE a? = 1 OR b? = 2")
        assert all(t.condition is None for t in result.triples)

    def test_column_to_column_comparison_not_a_condition(self):
        result = extract_sql("SELECT x WHERE a? > b?")
        assert all(t.condition is None for t in result.triples)

    def test_subquery_not_descended(self):
        result = extract_sql(
            "SELECT a FROM t WHERE x IN (SELECT inner_col FROM u)"
        )
        names = {
            t.attribute.text
            for t in result.triples
            if t.attribute is not None
        }
        assert "inner_col" not in names
        assert "x" in names

    def test_comparison_with_subquery_is_not_a_value_condition(self):
        result = extract_sql("SELECT a FROM t WHERE x > (SELECT max(y) FROM u)")
        x_triples = [
            t
            for t in result.triples
            if t.attribute is not None and t.attribute.text == "x"
        ]
        assert x_triples and all(t.condition is None for t in x_triples)

    def test_group_order_having_columns_collected(self):
        result = extract_sql(
            "SELECT g FROM t GROUP BY grp? HAVING count(h?) > 1 ORDER BY o?"
        )
        names = {
            t.attribute.text
            for t in result.triples
            if t.attribute is not None
        }
        assert {"grp", "h", "o"} <= names


class TestJoinFragments:
    def test_qualified_equality_is_fragment(self):
        result = extract_sql(
            "SELECT a WHERE t1?.id? = t2?.ref? AND t1?.v? = 3"
        )
        assert len(result.fragments) == 1
        fragment = result.fragments[0]
        assert fragment.left.relation.text == "t1"
        assert fragment.right.relation.text == "t2"

    def test_unqualified_equality_not_fragment(self):
        result = extract_sql("SELECT a WHERE x? = y?")
        assert result.fragments == []

    def test_fragment_columns_still_schema_content(self):
        result = extract_sql("SELECT a WHERE t1?.id? = t2?.ref?")
        names = {
            (t.relation.text if t.relation else None, t.attribute.text)
            for t in result.triples
            if t.attribute is not None
        }
        assert ("t1", "id") in names and ("t2", "ref") in names


class TestConjuncts:
    def test_nested_ands_flattened(self):
        query = parse("SELECT x WHERE a = 1 AND (b = 2 AND c = 3) AND d = 4")
        assert len(conjuncts_of(query.where)) == 4

    def test_or_kept_whole(self):
        query = parse("SELECT x WHERE a = 1 OR b = 2")
        assert len(conjuncts_of(query.where)) == 1

    def test_none_gives_empty(self):
        assert conjuncts_of(None) == []
