"""Unit tests for expression evaluation and three-valued logic."""

import datetime

import pytest

from repro.engine import ExecutionError, NameResolutionError
from repro.engine.evaluator import Evaluator, Scope, compare, like_match
from repro.sqlkit import parse_expression


def ev(expr: str, **columns):
    scope = Scope({"t": {k.lower(): v for k, v in columns.items()}})
    return Evaluator().evaluate(parse_expression(expr), scope)


class TestComparisons:
    def test_numeric(self):
        assert ev("t.a > 1", a=2) is True
        assert ev("t.a > 1", a=1) is False

    def test_int_float_mixed(self):
        assert ev("t.a = 1", a=1.0) is True

    def test_strings(self):
        assert ev("t.a < 'b'", a="a") is True

    def test_null_propagates(self):
        assert ev("t.a = 1", a=None) is None
        assert ev("t.a <> 1", a=None) is None

    def test_type_mismatch_equality_false(self):
        assert ev("t.a = 'x'", a=1) is False
        assert ev("t.a <> 'x'", a=1) is True

    def test_type_mismatch_ordering_raises(self):
        with pytest.raises(ExecutionError):
            ev("t.a > 'x'", a=1)

    def test_date_string_coercion(self):
        assert ev("t.a > '2000-01-01'", a=datetime.date(2005, 1, 1)) is True

    def test_date_bad_string_incomparable(self):
        with pytest.raises(ExecutionError):
            ev("t.a > 'not-a-date'", a=datetime.date(2005, 1, 1))


class TestBooleanLogic:
    def test_and_kleene(self):
        assert ev("t.a = 1 AND t.b = 1", a=None, b=2) is False
        assert ev("t.a = 1 AND t.b = 1", a=None, b=1) is None
        assert ev("t.a = 1 AND t.b = 1", a=1, b=1) is True

    def test_or_kleene(self):
        assert ev("t.a = 1 OR t.b = 1", a=None, b=1) is True
        assert ev("t.a = 1 OR t.b = 2", a=None, b=1) is None

    def test_not_unknown(self):
        assert ev("NOT t.a = 1", a=None) is None
        assert ev("NOT t.a = 1", a=2) is True


class TestPredicates:
    def test_between(self):
        assert ev("t.y BETWEEN 1995 AND 2005", y=2000) is True
        assert ev("t.y BETWEEN 1995 AND 2005", y=1990) is False
        assert ev("t.y NOT BETWEEN 1995 AND 2005", y=1990) is True
        assert ev("t.y BETWEEN 1995 AND 2005", y=None) is None

    def test_in_list(self):
        assert ev("t.g IN ('a', 'b')", g="a") is True
        assert ev("t.g IN ('a', 'b')", g="c") is False
        assert ev("t.g NOT IN ('a', 'b')", g="c") is True

    def test_in_list_null_semantics(self):
        assert ev("t.g IN ('a', NULL)", g="c") is None
        assert ev("t.g IN ('a', NULL)", g="a") is True
        assert ev("t.g IN ('a')", g=None) is None

    def test_like(self):
        assert ev("t.s LIKE '%Star%'", s="Star Wars") is True
        assert ev("t.s LIKE 'St_r%'", s="Star Wars") is True
        assert ev("t.s LIKE 'Wars'", s="Star Wars") is False
        assert ev("t.s NOT LIKE '%x%'", s="abc") is True
        assert ev("t.s LIKE '%a%'", s=None) is None

    def test_is_null(self):
        assert ev("t.a IS NULL", a=None) is True
        assert ev("t.a IS NOT NULL", a=None) is False


class TestArithmetic:
    def test_basic(self):
        assert ev("t.a + 2 * 3", a=1) == 7
        assert ev("(t.a + 2) * 3", a=1) == 9

    def test_integer_division_exact(self):
        assert ev("t.a / 2", a=6) == 3

    def test_division_fractional(self):
        assert ev("t.a / 2", a=7) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            ev("t.a / 0", a=1)

    def test_null_propagation(self):
        assert ev("t.a + 1", a=None) is None

    def test_concatenation(self):
        assert ev("t.a || '!'", a="hi") == "hi!"

    def test_modulo(self):
        assert ev("t.a % 3", a=7) == 1

    def test_unary(self):
        assert ev("-t.a", a=5) == -5


class TestScalarFunctions:
    def test_upper_lower(self):
        assert ev("upper(t.s)", s="ab") == "AB"
        assert ev("lower(t.s)", s="AB") == "ab"

    def test_length(self):
        assert ev("length(t.s)", s="abc") == 3

    def test_coalesce(self):
        assert ev("coalesce(t.a, 'x')", a=None) == "x"
        assert ev("coalesce(t.a, 'x')", a="y") == "y"

    def test_substr_one_based(self):
        assert ev("substr(t.s, 2, 2)", s="abcd") == "bc"

    def test_null_in_scalar_function(self):
        assert ev("upper(t.s)", s=None) is None

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            ev("frobnicate(t.s)", s="x")

    def test_case_expression(self):
        assert ev("CASE WHEN t.a > 0 THEN 'p' ELSE 'n' END", a=1) == "p"
        assert ev("CASE t.a WHEN 1 THEN 'one' END", a=2) is None


class TestScopes:
    def test_qualified_resolution(self):
        scope = Scope({"a": {"x": 1}, "b": {"x": 2}})
        assert scope.resolve("a", "x") == 1
        assert scope.resolve("B", "X") == 2

    def test_unqualified_unique(self):
        scope = Scope({"a": {"x": 1}, "b": {"y": 2}})
        assert scope.resolve(None, "y") == 2

    def test_unqualified_ambiguous_raises(self):
        scope = Scope({"a": {"x": 1}, "b": {"x": 2}})
        with pytest.raises(NameResolutionError):
            scope.resolve(None, "x")

    def test_outer_scope_chain(self):
        outer = Scope({"o": {"v": 42}})
        inner = outer.child({"i": {"w": 1}})
        assert inner.resolve("o", "v") == 42
        assert inner.resolve(None, "v") == 42

    def test_inner_shadows_outer(self):
        outer = Scope({"t": {"v": 1}})
        inner = outer.child({"t": {"v": 2}})
        assert inner.resolve("t", "v") == 2

    def test_missing_raises(self):
        scope = Scope({"t": {"x": 1}})
        with pytest.raises(NameResolutionError):
            scope.resolve("t", "nope")
        with pytest.raises(NameResolutionError):
            scope.resolve("ghost", "x")


class TestHelpers:
    def test_compare_null(self):
        assert compare("=", None, 1) is None

    def test_like_match_literal_specials(self):
        assert like_match("a.c", "a.c")
        assert not like_match("abc", "a.c")  # dot is literal, not wildcard
