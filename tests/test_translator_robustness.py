"""Robustness and behavioural-contract tests for the translator."""

import dataclasses

import pytest

from repro import SchemaFreeTranslator, TranslationError, TranslatorConfig
from repro.datasets import make_movie_database
from repro.sqlkit import ast, parse

from tests.helpers import PAPER_QUERY


@pytest.fixture(scope="module")
def movie_db():
    return make_movie_database()


class TestTopKContract:
    def test_translations_distinct(self, fig1_translator):
        translations = fig1_translator.translate(PAPER_QUERY, top_k=5)
        sqls = [t.sql for t in translations]
        assert len(sqls) == len(set(sqls))

    def test_weights_monotone(self, fig1_translator):
        translations = fig1_translator.translate(PAPER_QUERY, top_k=5)
        weights = [t.weight for t in translations]
        assert weights == sorted(weights, reverse=True)

    def test_k_one_equals_head_of_k_five(self, fig1_translator):
        one = fig1_translator.translate(PAPER_QUERY, top_k=1)
        five = fig1_translator.translate(PAPER_QUERY, top_k=5)
        assert one[0].sql == five[0].sql

    def test_all_translations_executable(self, fig1_db, fig1_translator):
        for translation in fig1_translator.translate(PAPER_QUERY, top_k=5):
            fig1_db.execute(translation.query)  # must not raise

    def test_every_translation_fully_exact(self, fig1_translator):
        for translation in fig1_translator.translate(PAPER_QUERY, top_k=5):
            for node in translation.query.walk():
                if isinstance(node, ast.ColumnRef):
                    assert node.attribute.certainty is ast.Certainty.EXACT
                if isinstance(node, ast.TableRef):
                    assert node.name.certainty is ast.Certainty.EXACT


class TestDeterminism:
    def test_same_input_same_output(self, fig1_db):
        first = SchemaFreeTranslator(fig1_db).translate_best(PAPER_QUERY)
        second = SchemaFreeTranslator(fig1_db).translate_best(PAPER_QUERY)
        assert first.sql == second.sql

    def test_translator_reusable_across_queries(self, fig1_db):
        translator = SchemaFreeTranslator(fig1_db)
        a1 = translator.translate_best("SELECT title? WHERE year? > 2000").sql
        translator.translate_best(PAPER_QUERY)
        a2 = translator.translate_best("SELECT title? WHERE year? > 2000").sql
        assert a1 == a2  # no hidden state drift (views unchanged)


class TestConfigInteraction:
    def test_small_top_k_config_default(self, fig1_db):
        translator = SchemaFreeTranslator(
            fig1_db, TranslatorConfig(top_k=3)
        )
        translations = translator.translate(PAPER_QUERY)
        assert len(translations) >= 2  # config's k used when not overridden

    def test_tight_sigma_narrows_candidates(self, fig1_db):
        loose = SchemaFreeTranslator(fig1_db, TranslatorConfig(sigma=0.99))
        best = loose.translate_best(PAPER_QUERY)
        assert fig1_db.execute(best.query).scalar() == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TranslatorConfig(sigma=0.0)
        with pytest.raises(ValueError):
            TranslatorConfig(kref=1.5)
        with pytest.raises(ValueError):
            TranslatorConfig(top_k=0)
        with pytest.raises(ValueError):
            TranslatorConfig(qgram=0)

    def test_max_expansions_cap_respected(self, movie_db):
        config = TranslatorConfig(max_expansions=50)
        translator = SchemaFreeTranslator(movie_db, config)
        # must terminate quickly even if the cap truncates the search
        try:
            translator.translate(PAPER_QUERY, top_k=1)
        except TranslationError:
            pass
        assert translator.last_stats.expanded <= 50 + 64  # one batch overshoot


class TestLargeSchema:
    def test_paper_query_on_43_relations(self, movie_db):
        translator = SchemaFreeTranslator(movie_db)
        best = translator.translate_best(PAPER_QUERY)
        sql = best.sql.lower()
        assert "person" in sql and "movie_producer" in sql

    def test_exact_sql_round_trip_on_large_schema(self, movie_db):
        translator = SchemaFreeTranslator(movie_db)
        gold = (
            "SELECT p.name FROM person p, director d "
            "WHERE p.person_id = d.person_id AND d.movie_id = 1"
        )
        best = translator.translate_best(gold)
        assert sorted(movie_db.execute(best.query).rows) == sorted(
            movie_db.execute(gold).rows
        )

    def test_fuzzy_everything(self, movie_db):
        translator = SchemaFreeTranslator(movie_db)
        best = translator.translate_best(
            "SELECT films?.title? WHERE films?.release_year? = 1997"
        )
        rows = movie_db.execute(best.query).rows
        gold = movie_db.execute(
            "SELECT title FROM movie WHERE release_year = 1997"
        ).rows
        assert sorted(rows) == sorted(gold)


class TestErrorReporting:
    def test_error_message_names_the_tree(self, fig1_db):
        translator = SchemaFreeTranslator(
            fig1_db, TranslatorConfig(kdef=0.0)
        )
        with pytest.raises(TranslationError) as exc_info:
            translator.translate_best("SELECT zzzqqqxxx?.wwwvvv?")
        assert "rt1" in str(exc_info.value)

    def test_non_query_ast_rejected(self, fig1_translator):
        with pytest.raises(TranslationError):
            fig1_translator.translate(ast.Literal(1))
