"""Unit tests for join networks and top-k MTJN generation (paper §5.2, §6.1)."""

import pytest

from repro.core import TranslatorConfig
from repro.core.join_network import JoinNetwork
from repro.core.mtjn import MTJNGenerator

from tests.helpers import FIG5_VIEW, PAPER_QUERY, make_xgraph


def generate(db, sql=PAPER_QUERY, k=1, views=(), config=None):
    xgraph, trees, mappings = make_xgraph(db, sql, views=views, config=config)
    generator = MTJNGenerator(xgraph, config or TranslatorConfig())
    return generator.generate(k), xgraph, trees


class TestJoinNetworkBasics:
    def test_single_node_network(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db, "SELECT Movie.title? FROM Movie")
        node = xgraph.nodes_for_tree(trees[0].key)[0]
        network = JoinNetwork.single(node)
        assert len(network) == 1
        assert network.is_total([trees[0].key])
        assert network.is_minimal()

    def test_expansion_adds_edge_and_weight(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        node = xgraph.nodes_for_tree(trees[0].key)[0]
        network = JoinNetwork.single(node)
        edge = xgraph.incident_edges(node)[0]
        expanded = network.expand_edge(edge, node)
        assert expanded is not None
        assert len(expanded) == 2
        assert expanded.construction_weight == pytest.approx(edge.weight)

    def test_duplicate_node_rejected(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        node = xgraph.nodes_for_tree(trees[0].key)[0]
        network = JoinNetwork.single(node)
        edge = xgraph.incident_edges(node)[0]
        expanded = network.expand_edge(edge, node)
        # adding the same edge again would re-add the same node
        assert expanded.expand_edge(edge, node) is None

    def test_one_node_per_relation_tree(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        # rt1 and rt2 both map to Person: a network holding rt1's Person
        # node must not also acquire another node for rt1
        rt1_nodes = xgraph.nodes_for_tree(trees[0].key)
        assert len(rt1_nodes) >= 1
        network = JoinNetwork.single(rt1_nodes[0])
        for edge in xgraph.incident_edges(rt1_nodes[0]):
            other = edge.other(rt1_nodes[0])
            if other.tree_key == trees[0].key:
                assert network.expand_edge(edge, rt1_nodes[0]) is None


class TestMTJNGeneration:
    def test_paper_query_top1_shape(self, fig1_db):
        networks, xgraph, trees = generate(fig1_db, k=1)
        assert networks
        best = networks[0]
        assert best.is_total([t.key for t in trees])
        assert best.is_minimal()
        relations = sorted(n.relation for n in best.nodes.values())
        assert relations == [
            "actor",
            "company",
            "director",
            "movie",
            "movie_producer",
            "person",
            "person",
        ]

    def test_top_k_are_distinct_and_sorted(self, fig1_db):
        networks, xgraph, _ = generate(fig1_db, k=5)
        assert len(networks) >= 2
        weights = [n.best_weight(xgraph.view_instances) for n in networks]
        assert weights == sorted(weights, reverse=True)
        canonicals = {n.canonical for n in networks}
        assert len(canonicals) == len(networks)

    def test_single_tree_query_yields_single_node(self, fig1_db):
        networks, _, trees = generate(fig1_db, "SELECT Movie.title? FROM Movie")
        assert networks and len(networks[0]) == 1

    def test_two_tree_query(self, fig1_db):
        networks, _, trees = generate(
            fig1_db,
            "SELECT title? WHERE director?.name? = 'Steven Spielberg'",
            k=1,
        )
        assert networks
        relations = sorted(n.relation for n in networks[0].nodes.values())
        assert "movie" in relations and "person" in relations

    def test_all_leaves_mapped(self, fig1_db):
        networks, _, _ = generate(fig1_db, k=3)
        for network in networks:
            for node_id, kids in network.children.items():
                if not kids:
                    assert network.nodes[node_id].is_mapped

    def test_stats_populated(self, fig1_db):
        xgraph, trees, mappings = make_xgraph(fig1_db)
        generator = MTJNGenerator(xgraph)
        generator.generate(1)
        assert generator.stats.expanded > 0
        assert generator.stats.emitted >= 1

    def test_graph_restored_after_generation(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        before = len(xgraph.nodes_for_tree(trees[0].key))
        MTJNGenerator(xgraph).generate(1)
        assert len(xgraph.nodes_for_tree(trees[0].key)) == before


class TestViews:
    def test_view_construction_outweighs_edges(self, fig1_db):
        # with Figure 5's view available, the best weight of the winning
        # MTJN must be at least as high as without it (Example 8)
        plain, xgraph_plain, _ = generate(fig1_db, k=1)
        viewed, xgraph_viewed, _ = generate(fig1_db, k=1, views=[FIG5_VIEW])
        w_plain = plain[0].best_weight(xgraph_plain.view_instances)
        w_viewed = viewed[0].best_weight(xgraph_viewed.view_instances)
        assert w_viewed >= w_plain

    def test_view_weight_definition7_max(self, fig1_db):
        networks, xgraph, _ = generate(fig1_db, k=1, views=[FIG5_VIEW])
        network = networks[0]
        basic = network.basic_weight
        best = network.best_weight(xgraph.view_instances)
        assert best >= basic

def make_tie_catalog():
    """Two structurally symmetric 2-edge paths between alpha and beta.

    The bridge relations are named so that neither resembles any query
    token: both alpha-zzqx-beta and alpha-zzqy-beta score exactly the
    same weight, producing a genuine top-k tie.
    """
    from repro import Catalog, DataType

    catalog = Catalog("tie")
    catalog.create_relation(
        "alpha",
        [("alpha_id", DataType.INTEGER), ("payload", DataType.TEXT)],
        primary_key=["alpha_id"],
    )
    catalog.create_relation(
        "beta",
        [("beta_id", DataType.INTEGER), ("payload", DataType.TEXT)],
        primary_key=["beta_id"],
    )
    for bridge in ("zzqx", "zzqy"):
        catalog.create_relation(
            bridge,
            [("alpha_id", DataType.INTEGER), ("beta_id", DataType.INTEGER)],
        )
        catalog.add_foreign_key(bridge, "alpha_id", "alpha")
        catalog.add_foreign_key(bridge, "beta_id", "beta")
    return catalog


TIE_QUERY = "SELECT alpha?.payload?, beta?.payload?"


class TestDeterministicTieBreaking:
    def _db(self):
        from repro import Database

        return Database(make_tie_catalog())

    def test_crafted_tie_is_a_real_tie(self):
        networks, xgraph, _ = generate(self._db(), TIE_QUERY, k=2)
        assert len(networks) == 2
        weights = [n.best_weight(xgraph.view_instances) for n in networks]
        assert weights[0] == pytest.approx(weights[1])
        bridges = {
            relation
            for network in networks
            for relation in (n.relation for n in network.nodes.values())
            if relation.startswith("zzq")
        }
        assert bridges == {"zzqx", "zzqy"}

    def test_tied_networks_sorted_by_canonical_signature(self):
        networks, _, _ = generate(self._db(), TIE_QUERY, k=2)
        keys = [network.sort_key for network in networks]
        assert keys == sorted(keys)

    def test_topk_independent_of_expansion_order(self, monkeypatch):
        baseline, _, _ = generate(self._db(), TIE_QUERY, k=2)
        original = MTJNGenerator._expansions

        def reversed_expansions(self, network):
            return list(original(self, network))[::-1]

        monkeypatch.setattr(MTJNGenerator, "_expansions", reversed_expansions)
        reordered, _, _ = generate(self._db(), TIE_QUERY, k=2)
        assert [n.canonical for n in reordered] == [
            n.canonical for n in baseline
        ]


class TestFrontierInvariant:
    def test_conservation_paper_query(self, fig1_db):
        xgraph, _, _ = make_xgraph(fig1_db)
        generator = MTJNGenerator(xgraph)
        generator.generate(3)
        stats = generator.stats
        assert stats.pushed == stats.expanded + stats.pruned + stats.leftover

    def test_conservation_under_tight_expansion_cap(self, fig1_db):
        config = TranslatorConfig(max_expansions=5)
        xgraph, _, _ = make_xgraph(fig1_db, config=config)
        generator = MTJNGenerator(xgraph, config)
        generator.generate(3)
        stats = generator.stats
        assert stats.pushed == stats.expanded + stats.pruned + stats.leftover
        assert stats.leftover > 0
