"""Unit tests for join networks and top-k MTJN generation (paper §5.2, §6.1)."""

import pytest

from repro.core import TranslatorConfig
from repro.core.join_network import JoinNetwork
from repro.core.mtjn import MTJNGenerator

from tests.helpers import FIG5_VIEW, PAPER_QUERY, make_xgraph


def generate(db, sql=PAPER_QUERY, k=1, views=(), config=None):
    xgraph, trees, mappings = make_xgraph(db, sql, views=views, config=config)
    generator = MTJNGenerator(xgraph, config or TranslatorConfig())
    return generator.generate(k), xgraph, trees


class TestJoinNetworkBasics:
    def test_single_node_network(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db, "SELECT Movie.title? FROM Movie")
        node = xgraph.nodes_for_tree(trees[0].key)[0]
        network = JoinNetwork.single(node)
        assert len(network) == 1
        assert network.is_total([trees[0].key])
        assert network.is_minimal()

    def test_expansion_adds_edge_and_weight(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        node = xgraph.nodes_for_tree(trees[0].key)[0]
        network = JoinNetwork.single(node)
        edge = xgraph.incident_edges(node)[0]
        expanded = network.expand_edge(edge, node)
        assert expanded is not None
        assert len(expanded) == 2
        assert expanded.construction_weight == pytest.approx(edge.weight)

    def test_duplicate_node_rejected(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        node = xgraph.nodes_for_tree(trees[0].key)[0]
        network = JoinNetwork.single(node)
        edge = xgraph.incident_edges(node)[0]
        expanded = network.expand_edge(edge, node)
        # adding the same edge again would re-add the same node
        assert expanded.expand_edge(edge, node) is None

    def test_one_node_per_relation_tree(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        # rt1 and rt2 both map to Person: a network holding rt1's Person
        # node must not also acquire another node for rt1
        rt1_nodes = xgraph.nodes_for_tree(trees[0].key)
        assert len(rt1_nodes) >= 1
        network = JoinNetwork.single(rt1_nodes[0])
        for edge in xgraph.incident_edges(rt1_nodes[0]):
            other = edge.other(rt1_nodes[0])
            if other.tree_key == trees[0].key:
                assert network.expand_edge(edge, rt1_nodes[0]) is None


class TestMTJNGeneration:
    def test_paper_query_top1_shape(self, fig1_db):
        networks, xgraph, trees = generate(fig1_db, k=1)
        assert networks
        best = networks[0]
        assert best.is_total([t.key for t in trees])
        assert best.is_minimal()
        relations = sorted(n.relation for n in best.nodes.values())
        assert relations == [
            "actor",
            "company",
            "director",
            "movie",
            "movie_producer",
            "person",
            "person",
        ]

    def test_top_k_are_distinct_and_sorted(self, fig1_db):
        networks, xgraph, _ = generate(fig1_db, k=5)
        assert len(networks) >= 2
        weights = [n.best_weight(xgraph.view_instances) for n in networks]
        assert weights == sorted(weights, reverse=True)
        canonicals = {n.canonical for n in networks}
        assert len(canonicals) == len(networks)

    def test_single_tree_query_yields_single_node(self, fig1_db):
        networks, _, trees = generate(fig1_db, "SELECT Movie.title? FROM Movie")
        assert networks and len(networks[0]) == 1

    def test_two_tree_query(self, fig1_db):
        networks, _, trees = generate(
            fig1_db,
            "SELECT title? WHERE director?.name? = 'Steven Spielberg'",
            k=1,
        )
        assert networks
        relations = sorted(n.relation for n in networks[0].nodes.values())
        assert "movie" in relations and "person" in relations

    def test_all_leaves_mapped(self, fig1_db):
        networks, _, _ = generate(fig1_db, k=3)
        for network in networks:
            for node_id, kids in network.children.items():
                if not kids:
                    assert network.nodes[node_id].is_mapped

    def test_stats_populated(self, fig1_db):
        xgraph, trees, mappings = make_xgraph(fig1_db)
        generator = MTJNGenerator(xgraph)
        generator.generate(1)
        assert generator.stats.expanded > 0
        assert generator.stats.emitted >= 1

    def test_graph_restored_after_generation(self, fig1_db):
        xgraph, trees, _ = make_xgraph(fig1_db)
        before = len(xgraph.nodes_for_tree(trees[0].key))
        MTJNGenerator(xgraph).generate(1)
        assert len(xgraph.nodes_for_tree(trees[0].key)) == before


class TestViews:
    def test_view_construction_outweighs_edges(self, fig1_db):
        # with Figure 5's view available, the best weight of the winning
        # MTJN must be at least as high as without it (Example 8)
        plain, xgraph_plain, _ = generate(fig1_db, k=1)
        viewed, xgraph_viewed, _ = generate(fig1_db, k=1, views=[FIG5_VIEW])
        w_plain = plain[0].best_weight(xgraph_plain.view_instances)
        w_viewed = viewed[0].best_weight(xgraph_viewed.view_instances)
        assert w_viewed >= w_plain

    def test_view_weight_definition7_max(self, fig1_db):
        networks, xgraph, _ = generate(fig1_db, k=1, views=[FIG5_VIEW])
        network = networks[0]
        basic = network.basic_weight
        best = network.best_weight(xgraph.view_instances)
        assert best >= basic
