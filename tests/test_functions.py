"""Unit tests for scalar and aggregate SQL functions."""

import pytest

from repro.engine import ExecutionError
from repro.engine.functions import (
    AGGREGATE_NAMES,
    aggregate,
    call_scalar,
    is_aggregate,
)


class TestScalars:
    def test_string_functions(self):
        assert call_scalar("upper", ["ab"]) == "AB"
        assert call_scalar("lower", ["AB"]) == "ab"
        assert call_scalar("trim", ["  x  "]) == "x"
        assert call_scalar("length", ["abcd"]) == 4

    def test_numeric_functions(self):
        assert call_scalar("abs", [-3]) == 3
        assert call_scalar("round", [3.456, 1]) == 3.5
        assert call_scalar("floor", [3.7]) == 3
        assert call_scalar("ceil", [3.2]) == 4
        assert call_scalar("sqrt", [16]) == 4.0

    def test_substr_is_one_based(self):
        assert call_scalar("substr", ["hello", 1, 2]) == "he"
        assert call_scalar("substr", ["hello", 3]) == "llo"

    def test_concat(self):
        assert call_scalar("concat", ["a", "b", 1]) == "ab1"

    def test_null_propagation(self):
        assert call_scalar("upper", [None]) is None
        assert call_scalar("abs", [None]) is None

    def test_coalesce_takes_first_non_null(self):
        assert call_scalar("coalesce", [None, None, 3]) == 3
        assert call_scalar("coalesce", [None, None]) is None

    def test_nullif(self):
        assert call_scalar("nullif", [1, 1]) is None
        assert call_scalar("nullif", [1, 2]) == 1

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            call_scalar("no_such_fn", [1])

    def test_type_error_wrapped(self):
        with pytest.raises(ExecutionError):
            call_scalar("sqrt", ["not a number"])


class TestAggregates:
    def test_registry(self):
        assert AGGREGATE_NAMES == {"count", "sum", "avg", "min", "max"}
        assert is_aggregate("count") and not is_aggregate("upper")

    def test_count_skips_nulls(self):
        assert aggregate("count", [1, None, 2, None]) == 2

    def test_count_distinct(self):
        assert aggregate("count", [1, 1, 2, None], distinct=True) == 2

    def test_sum_avg(self):
        assert aggregate("sum", [1, 2, 3, None]) == 6
        assert aggregate("avg", [1, 2, 3, None]) == 2.0

    def test_min_max(self):
        assert aggregate("min", [3, None, 1]) == 1
        assert aggregate("max", [3, None, 1]) == 3

    def test_empty_input(self):
        assert aggregate("count", []) == 0
        assert aggregate("sum", []) is None
        assert aggregate("avg", [None, None]) is None
        assert aggregate("min", []) is None

    def test_distinct_sum(self):
        assert aggregate("sum", [2, 2, 3], distinct=True) == 5

    def test_text_min_max(self):
        assert aggregate("min", ["b", "a", "c"]) == "a"
        assert aggregate("max", ["b", "a", "c"]) == "c"
